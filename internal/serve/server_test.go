package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/flexray-go/coefficient/internal/experiment"
)

// instantSleep makes retry backoffs free in tests while preserving the
// cancellation semantics of the real sleeper.
func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func testConfig() Config {
	return Config{
		Workers:       2,
		QueueCapacity: 8,
		Retry:         RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond},
		Sleep:         instantSleep,
	}
}

func quickSpec(seed uint64) JobSpec {
	return JobSpec{Seed: seed, Quick: true, Parallel: 1}
}

// mustNew builds a server or fails the test; only durable-state setups
// can make New error.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// drainAll settles the server: every admitted job reaches a terminal
// state before it returns.
func drainAll(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// offlineTable runs the same scenario serially, offline — the bytes a
// daemon result must match exactly.
func offlineTable(t *testing.T, spec JobSpec) string {
	t.Helper()
	rows, err := experiment.Degradation(experiment.DegradationOptions{
		Scenario:  spec.Scenario,
		Setting:   spec.setting(),
		Seed:      spec.Seed,
		Quick:     spec.Quick,
		Minislots: spec.Minislots,
		Parallel:  1,
	})
	if err != nil {
		t.Fatalf("offline run: %v", err)
	}
	return experiment.DegradationTable(rows).String()
}

// waitStats polls until pred holds or the deadline passes.
func waitStats(t *testing.T, s *Server, what string, pred func(Stats) bool) {
	t.Helper()
	for i := 0; i < 30000; i++ {
		if pred(s.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats %+v", what, s.Stats())
}

func TestSubmitRunsJobAndMatchesOfflineRun(t *testing.T) {
	s := mustNew(t, testConfig())
	s.Start()
	spec := quickSpec(1)
	job, cached, err := s.Submit(spec)
	if err != nil || cached != nil {
		t.Fatalf("submit: job %v, cached %v, err %v", job, cached, err)
	}
	drainAll(t, s)

	st := s.Status(job)
	if st.State != "done" {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	res, ok := s.Store().Get(job.Hash)
	if !ok {
		t.Fatal("result missing from store")
	}
	if want := offlineTable(t, spec); res.Table != want {
		t.Errorf("daemon result differs from serial offline run:\n%s\nvs\n%s", res.Table, want)
	}
	stats := s.Stats()
	if stats.Done != 1 || stats.Admitted != 1 || stats.DoubleReports != 0 || stats.StoreConflicts != 0 {
		t.Errorf("stats %+v", stats)
	}
}

func TestSubmitReturnsCachedResult(t *testing.T) {
	s := mustNew(t, testConfig())
	s.Start()
	spec := quickSpec(2)
	if _, _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, "job done", func(st Stats) bool { return st.Done == 1 })

	// Identical spec: served from the store, no new job.
	_, cached, err := s.Submit(spec)
	if err != nil || cached == nil {
		t.Fatalf("resubmit: cached %v, err %v", cached, err)
	}
	// Service knobs (criticality, deadline, parallelism) must not split
	// the cache: the result is byte-identical regardless.
	alt := spec
	alt.Criticality = "high"
	alt.Parallel = 8
	alt.Deadline = 1 << 40
	_, cached2, err := s.Submit(alt)
	if err != nil || cached2 == nil {
		t.Fatalf("alt resubmit: cached %v, err %v", cached2, err)
	}
	if cached2.Hash != cached.Hash {
		t.Error("service knobs changed the canonical scenario hash")
	}
	drainAll(t, s)
}

func TestBadSpecsRejected(t *testing.T) {
	s := mustNew(t, testConfig())
	cases := []JobSpec{
		{Seed: 1, Setting: "BER-8"},
		{Seed: 1, Criticality: "urgent"},
		{Seed: 1, Minislots: -1},
		{Seed: 1, Parallel: -2},
		{Seed: 1, Deadline: -5},
	}
	for i, spec := range cases {
		if _, _, err := s.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d: err = %v, want ErrBadSpec", i, err)
		}
	}
}

func TestAdmissionShedsByCriticalityAndRejectsWhenFull(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueCapacity = 2
	gate := make(chan struct{})
	cfg.Hooks.BeforeAttempt = func(ctx context.Context, hash string, attempt int) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s := mustNew(t, cfg)
	s.Start()

	// j1 occupies the single worker (held at the gate).
	j1, _, err := s.Submit(quickSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, "worker busy", func(st Stats) bool { return st.Running == 1 })

	low1spec, low2spec := quickSpec(11), quickSpec(12)
	low1spec.Criticality, low2spec.Criticality = "low", "low"
	low1, _, err := s.Submit(low1spec)
	if err != nil {
		t.Fatal(err)
	}
	low2, _, err := s.Submit(low2spec)
	if err != nil {
		t.Fatal(err)
	}

	// Queue full: a high-criticality job preempts the newest low job.
	highSpec := quickSpec(13)
	highSpec.Criticality = "high"
	high, _, err := s.Submit(highSpec)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Status(low2); st.State != "shed" {
		t.Fatalf("low2 state = %s, want shed", st.State)
	}

	// Queue full again ({low1, high}): a low submission has no victim.
	rejSpec := quickSpec(14)
	rejSpec.Criticality = "low"
	if _, _, err := s.Submit(rejSpec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}

	close(gate)
	drainAll(t, s)

	for _, c := range []struct {
		job  *Job
		want string
	}{{j1, "done"}, {low1, "done"}, {high, "done"}, {low2, "shed"}} {
		if st := s.Status(c.job); st.State != c.want {
			t.Errorf("%s: state = %s (err %q), want %s", c.job.ID, st.State, st.Error, c.want)
		}
	}
	stats := s.Stats()
	if stats.Admitted != 4 || stats.Done != 3 || stats.Shed != 1 || stats.DoubleReports != 0 {
		t.Errorf("stats %+v", stats)
	}
}

func TestJobDeadlineFailsSlowJob(t *testing.T) {
	cfg := testConfig()
	// A slow cell: blocks until the job's deadline cancels it.
	cfg.Hooks.BeforeAttempt = func(ctx context.Context, hash string, attempt int) error {
		<-ctx.Done()
		return ctx.Err()
	}
	s := mustNew(t, cfg)
	s.Start()
	spec := quickSpec(20)
	spec.Deadline = 30 * 1000 * 1000 // 30ms in scenario.Duration (ns)
	job, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainAll(t, s)
	st := s.Status(job)
	if st.State != "failed" {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, context.DeadlineExceeded.Error()) {
		t.Errorf("error %q does not mention the deadline", st.Error)
	}
}

func TestQuarantineAfterRepeatedPanics(t *testing.T) {
	cfg := testConfig()
	cfg.Retry = RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	cfg.QuarantineAfter = 3
	cfg.Hooks.BeforeAttempt = func(ctx context.Context, hash string, attempt int) error {
		panic(fmt.Sprintf("poisoned scenario, attempt %d", attempt))
	}
	s := mustNew(t, cfg)
	s.Start()
	spec := quickSpec(30)
	job, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, "quarantine", func(st Stats) bool { return st.Quarantined == 1 })

	st := s.Status(job)
	if st.State != "quarantined" {
		t.Fatalf("state = %s, want quarantined", st.State)
	}
	if len(st.Attempts) != 3 {
		t.Errorf("attempts = %d, want 3 (quarantined after the third panic)", len(st.Attempts))
	}
	for _, a := range st.Attempts {
		if !a.Panic {
			t.Errorf("attempt %d not marked as panic", a.Attempt)
		}
		if !strings.Contains(a.Error, "poisoned scenario") {
			t.Errorf("attempt %d error %q missing panic value", a.Attempt, a.Error)
		}
		if !strings.Contains(a.Error, "serve.(*Server).attempt") && !strings.Contains(a.Error, "goroutine") {
			t.Errorf("attempt %d error missing stack trace:\n%s", a.Attempt, a.Error)
		}
	}

	// Further submissions of the poisoned scenario are refused.
	if _, _, err := s.Submit(spec); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("resubmit err = %v, want ErrQuarantined", err)
	}
	if hashes := s.Stats().QuarantinedHashes; len(hashes) != 1 || hashes[0] != job.Hash {
		t.Errorf("quarantined hashes = %v, want [%s]", hashes, job.Hash)
	}
	drainAll(t, s)
}

func TestForcedDrainTerminatesWithNoJobLost(t *testing.T) {
	cfg := testConfig()
	cfg.Hooks.BeforeAttempt = func(ctx context.Context, hash string, attempt int) error {
		<-ctx.Done() // in-flight jobs outrun any drain deadline
		return ctx.Err()
	}
	s := mustNew(t, cfg)
	s.Start()
	for seed := uint64(40); seed < 43; seed++ {
		if _, _, err := s.Submit(quickSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err = %v, want DeadlineExceeded", err)
	}
	stats := s.Stats()
	if stats.Failed != 3 || stats.Queued != 0 || stats.Running != 0 {
		t.Errorf("jobs lost in forced drain: %+v", stats)
	}
	if stats.Admitted != stats.Done+stats.Failed+stats.Shed+stats.Quarantined {
		t.Errorf("admitted %d != terminal total: %+v", stats.Admitted, stats)
	}
}

// TestRetryTimelineDeterministic is the retry/backoff determinism
// contract: the same seeds and the same injected transient-failure
// schedule produce byte-identical retry timelines and final results at
// worker count 1 / sweep parallelism 1 and worker count 8 / sweep
// parallelism 8.
func TestRetryTimelineDeterministic(t *testing.T) {
	runOnce := func(workers, specParallel int) (map[string]string, map[string]string) {
		cfg := Config{
			Workers:       workers,
			QueueCapacity: 16,
			Retry:         RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond},
			Sleep:         instantSleep,
			Hooks: Hooks{
				// The injected schedule: every job's first two attempts
				// fail transiently, the third succeeds.
				BeforeAttempt: func(ctx context.Context, hash string, attempt int) error {
					if attempt <= 2 {
						return Transient(fmt.Errorf("injected fault %d for %s", attempt, hash[:8]))
					}
					return nil
				},
			},
		}
		s := mustNew(t, cfg)
		s.Start()
		jobs := make([]*Job, 0, 3)
		for seed := uint64(1); seed <= 3; seed++ {
			spec := quickSpec(seed)
			spec.Parallel = specParallel
			job, _, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job)
		}
		drainAll(t, s)
		timelines := make(map[string]string, len(jobs))
		tables := make(map[string]string, len(jobs))
		for _, job := range jobs {
			st := s.Status(job)
			if st.State != "done" {
				t.Fatalf("job %s state %s (err %q)", job.ID, st.State, st.Error)
			}
			tl, err := json.Marshal(st.Attempts)
			if err != nil {
				t.Fatal(err)
			}
			timelines[job.Hash] = string(tl)
			res, _ := s.Store().Get(job.Hash)
			tables[job.Hash] = res.Table
		}
		return timelines, tables
	}

	serialTL, serialTables := runOnce(1, 1)
	parTL, parTables := runOnce(8, 8)
	if len(serialTL) != 3 {
		t.Fatalf("expected 3 distinct scenario hashes, got %d", len(serialTL))
	}
	hashes := make([]string, 0, len(serialTL))
	for hash := range serialTL {
		hashes = append(hashes, hash)
	}
	sort.Strings(hashes)
	for _, hash := range hashes {
		tl := serialTL[hash]
		if got := parTL[hash]; got != tl {
			t.Errorf("retry timeline for %s differs:\nserial: %s\nparallel: %s", hash[:8], tl, got)
		}
		if !strings.Contains(tl, `"backoff"`) {
			t.Errorf("timeline for %s records no backoffs: %s", hash[:8], tl)
		}
		if serialTables[hash] != parTables[hash] {
			t.Errorf("final result for %s differs between parallelism degrees", hash[:8])
		}
	}
}

func TestHTTPAPIEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.ResultDir = filepath.Join(t.TempDir(), "served")
	s := mustNew(t, cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp, string(data)
	}
	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp, string(data)
	}

	// Malformed and unknown-field submissions are 400s.
	if resp, _ := post("{"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
	if resp, _ := post(`{"sede": 1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", resp.StatusCode)
	}

	// A good submission is accepted and runs to done.
	resp, body := post(`{"seed": 5, "quick": true, "parallel": 1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	var accepted struct{ ID, Hash, Status string }
	if err := json.Unmarshal([]byte(body), &accepted); err != nil {
		t.Fatal(err)
	}
	state := ""
	for i := 0; i < 30000 && state != "done"; i++ {
		_, jb := get("/jobs/" + accepted.ID)
		var st struct{ State string }
		if err := json.Unmarshal([]byte(jb), &st); err != nil {
			t.Fatal(err)
		}
		state = st.State
		if state != "done" {
			time.Sleep(time.Millisecond)
		}
	}
	if state != "done" {
		t.Fatalf("job never completed; last state %q", state)
	}

	// The result is retrievable by hash and resubmission hits the cache.
	if resp, rb := get("/results/" + accepted.Hash); resp.StatusCode != http.StatusOK ||
		!strings.Contains(rb, "Graceful degradation") {
		t.Errorf("result fetch: status %d body %s", resp.StatusCode, rb)
	}
	if resp, rb := post(`{"seed": 5, "quick": true, "parallel": 1}`); resp.StatusCode != http.StatusOK ||
		!strings.Contains(rb, `"cached"`) {
		t.Errorf("cached resubmit: status %d body %s", resp.StatusCode, rb)
	}

	// Unknown IDs and hashes are 404s.
	if resp, _ := get("/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
	if resp, _ := get("/results/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown result: status %d", resp.StatusCode)
	}

	// Health and readiness while serving.
	if resp, hb := get("/healthz"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(hb, `"done": 1`) || !strings.Contains(hb, `"draining": false`) {
		t.Errorf("healthz: status %d body %s", resp.StatusCode, hb)
	}
	if resp, rb := get("/readyz"); resp.StatusCode != http.StatusOK || !strings.Contains(rb, `"ready": true`) {
		t.Errorf("readyz: status %d body %s", resp.StatusCode, rb)
	}

	// Drain: readiness flips, submissions bounce with Retry-After, the
	// result store is flushed to disk.
	drainAll(t, s)
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable ||
		resp.Header.Get("Retry-After") == "" {
		t.Errorf("readyz during drain: status %d retry-after %q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if resp, _ := post(`{"seed": 6, "quick": true}`); resp.StatusCode != http.StatusServiceUnavailable ||
		resp.Header.Get("Retry-After") == "" {
		t.Errorf("submit during drain: status %d", resp.StatusCode)
	}
	flushed := filepath.Join(cfg.ResultDir, accepted.Hash+".json")
	data, err := os.ReadFile(flushed)
	if err != nil {
		t.Fatalf("flushed result: %v", err)
	}
	if !strings.Contains(string(data), "Graceful degradation") {
		t.Errorf("flushed result incomplete: %s", data)
	}
}

// TestHealthzReportsDurabilityGauges boots a daemon from the crash image
// of a frozen one and asserts /healthz carries the durability gauges:
// journal size, persistent-store size, degradation flag, and the number
// of jobs the recovery replay re-enqueued.
func TestHealthzReportsDurabilityGauges(t *testing.T) {
	cfg := durableConfig(t)
	cfg.Workers = 1
	gate := make(chan struct{})
	cfg.Hooks.BeforeAttempt = func(ctx context.Context, hash string, attempt int) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s1 := mustNew(t, cfg)
	s1.Start()
	for seed := uint64(560); seed < 562; seed++ {
		if _, _, err := s1.Submit(quickSpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	waitStats(t, s1, "worker busy", func(st Stats) bool { return st.Running == 1 })
	crashDir := filepath.Join(t.TempDir(), "crash")
	copyDir(t, cfg.StateDir, crashDir)

	cfg2 := testConfig()
	cfg2.StateDir = crashDir
	s2 := mustNew(t, cfg2)
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()

	gauges := func() map[string]any {
		t.Helper()
		resp, err := httpGet(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.status != http.StatusOK {
			t.Fatalf("healthz status %d", resp.status)
		}
		doc := make(map[string]any)
		if err := json.Unmarshal([]byte(resp.body), &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	doc := gauges()
	if got := doc["recoveredJobs"]; got != float64(2) {
		t.Errorf("recoveredJobs = %v, want 2", got)
	}
	if got := doc["diskDegraded"]; got != false {
		t.Errorf("diskDegraded = %v, want false", got)
	}
	if got := doc["journalRecords"]; got == float64(0) {
		t.Error("journalRecords = 0 after replaying two admitted jobs")
	}
	if got := doc["journalBytes"]; got == float64(0) {
		t.Error("journalBytes = 0 after replaying two admitted jobs")
	}
	if got := doc["storeEntries"]; got != float64(0) {
		t.Errorf("storeEntries = %v before any result persisted, want 0", got)
	}

	s2.Start()
	drainAll(t, s2)
	doc = gauges()
	if got := doc["storeEntries"]; got != float64(2) {
		t.Errorf("storeEntries = %v after both recovered jobs completed, want 2", got)
	}
	if got := doc["done"]; got != float64(2) {
		t.Errorf("done = %v, want 2", got)
	}

	close(gate)
	drainAll(t, s1)
}
