package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/flexray-go/coefficient/internal/experiment"
)

// Result is one completed simulation, keyed by canonical scenario hash.
type Result struct {
	// Hash is the canonical scenario hash.
	Hash string `json:"hash"`
	// JobID identifies the job that computed the result first.
	JobID string `json:"jobId"`
	// Rows are the degradation-harness rows.
	Rows []experiment.DegradationRow `json:"rows"`
	// Table is the rendered table — the bytes that must match a serial
	// offline run of the same scenario.
	Table string `json:"table"`
}

// Store is the write-once result store.  Two jobs with the same
// scenario hash must produce byte-identical results (the runner's
// determinism contract), so a duplicate Put with identical bytes is a
// harmless cache refill, while a duplicate with different bytes is a
// determinism violation: Put rejects it, keeps the first result, and
// counts the conflict so the chaos suite can assert there were none.
type Store struct {
	mu        sync.Mutex
	byHash    map[string]*Result
	conflicts int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byHash: make(map[string]*Result)}
}

// Get returns the result for hash, if present.
func (s *Store) Get(hash string) (*Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byHash[hash]
	return r, ok
}

// Put stores r under its hash, write-once (see the type comment).
func (s *Store) Put(r *Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.byHash[r.Hash]
	if !ok {
		s.byHash[r.Hash] = r
		return nil
	}
	if prev.Table == r.Table {
		return nil
	}
	s.conflicts++
	return fmt.Errorf("store: conflicting result for %s: job %s disagrees with job %s (determinism violation)",
		r.Hash, r.JobID, prev.JobID)
}

// Len returns the number of stored results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byHash)
}

// Conflicts returns the number of rejected conflicting Puts.
func (s *Store) Conflicts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conflicts
}

// Flush writes every result to dir as <hash>.json, in sorted hash order
// so the write sequence (and any partial flush after a mid-way error)
// is deterministic.  Close errors propagate: the final buffered write
// happens in Close, and a silently truncated result file would defeat
// the no-result-lost guarantee the flush exists to provide.
func (s *Store) Flush(dir string) error {
	s.mu.Lock()
	hashes := make([]string, 0, len(s.byHash))
	for h := range s.byHash {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	results := make([]*Result, len(hashes))
	for i, h := range hashes {
		results[i] = s.byHash[h]
	}
	s.mu.Unlock()

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		path := filepath.Join(dir, r.Hash+".json")
		err := writeFile(path, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(r)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates path, hands it to write, and propagates the Close
// error if write itself succeeded.
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return write(f)
}
