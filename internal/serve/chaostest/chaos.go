// Package chaostest stresses the simulation daemon with injected worker
// panics, transient faults, slow cells, and deadline storms, and checks
// the fault-tolerance invariants the daemon promises (DESIGN.md §11):
//
//   - no job lost: every admitted job reaches exactly one terminal state;
//   - no double-report: no job transitions terminal→terminal, and the
//     write-once result store records no conflicting tables;
//   - drain always terminates: graceful when workers finish in time,
//     forced (in-flight cancelled) when they do not;
//   - surviving results are byte-identical to a serial offline run.
//
// The harness is deliberately deterministic: fault decisions are drawn
// from a splitmix64 stream keyed by (plan seed, scenario hash, attempt),
// never from wall-clock time or the global rand source, so a failing
// chaos run replays exactly.
package chaostest

import (
	"context"
	"fmt"
	"sync"

	"github.com/flexray-go/coefficient/internal/runner"
	"github.com/flexray-go/coefficient/internal/serve"
)

// Fault is one injected misbehaviour mode.
type Fault int

const (
	// FaultNone lets the attempt run normally.
	FaultNone Fault = iota
	// FaultTransient makes the attempt fail with a retryable error.
	FaultTransient
	// FaultPanic makes the worker panic mid-attempt.
	FaultPanic
	// FaultSlow wedges the attempt until its context is cancelled — a
	// stuck cell that only a deadline or drain can free.
	FaultSlow
)

// String names the fault for test diagnostics.
func (f Fault) String() string {
	switch f {
	case FaultTransient:
		return "transient"
	case FaultPanic:
		return "panic"
	case FaultSlow:
		return "slow"
	}
	return "none"
}

// Plan decides, deterministically from its seed, which fault each
// (scenario, attempt) pair suffers.
type Plan struct {
	// Seed keys the fault stream.  The same seed over the same job set
	// replays the same faults.
	Seed uint64
	// TransientPct, PanicPct and SlowPct are percentage weights for each
	// fault mode; the remainder of the 100-point scale is FaultNone.
	TransientPct, PanicPct, SlowPct uint64
	// Poisoned marks scenario hashes that panic on every attempt,
	// regardless of the weights — the quarantine trigger.
	Poisoned map[string]bool
}

// fault draws the fault for one attempt.
func (p Plan) fault(hash string, attempt int) Fault {
	if p.Poisoned[hash] {
		return FaultPanic
	}
	draw := runner.CellSeed(p.Seed, foldHash(hash), uint64(attempt)) % 100
	switch {
	case draw < p.TransientPct:
		return FaultTransient
	case draw < p.TransientPct+p.PanicPct:
		return FaultPanic
	case draw < p.TransientPct+p.PanicPct+p.SlowPct:
		return FaultSlow
	}
	return FaultNone
}

// foldHash reduces a scenario hash to a stream word (FNV-style fold; the
// exact mixing does not matter, only that it is deterministic).
func foldHash(hash string) uint64 {
	var w uint64 = 14695981039346656037
	for i := 0; i < len(hash); i++ {
		w = w*1099511628211 ^ uint64(hash[i])
	}
	return w
}

// Harness wires a fault Plan into a daemon's attempt hook and counts
// what it injected.
type Harness struct {
	// Server is the daemon under chaos.  Start, Submit and Drain it as
	// usual.
	Server *serve.Server

	mu       sync.Mutex
	injected map[Fault]int
}

// New builds a daemon from cfg with the plan's faults injected before
// every attempt.  A BeforeAttempt hook already present in cfg still runs,
// after the injector declines to fault.  The error is serve.New's —
// non-nil only when cfg requests durable state that cannot be opened.
func New(cfg serve.Config, plan Plan) (*Harness, error) {
	h := &Harness{injected: make(map[Fault]int)}
	prev := cfg.Hooks.BeforeAttempt
	cfg.Hooks.BeforeAttempt = func(ctx context.Context, hash string, attempt int) error {
		f := plan.fault(hash, attempt)
		h.note(f)
		switch f {
		case FaultTransient:
			return serve.Transient(fmt.Errorf("chaos: injected transient fault (%s attempt %d)", hash[:8], attempt))
		case FaultPanic:
			panic(fmt.Sprintf("chaos: injected panic (%s attempt %d)", hash[:8], attempt))
		case FaultSlow:
			<-ctx.Done()
			return ctx.Err()
		}
		if prev != nil {
			return prev(ctx, hash, attempt)
		}
		return nil
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	h.Server = srv
	return h, nil
}

func (h *Harness) note(f Fault) {
	if f == FaultNone {
		return
	}
	h.mu.Lock()
	h.injected[f]++
	h.mu.Unlock()
}

// Injected reports how many attempts suffered the given fault.
func (h *Harness) Injected(f Fault) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.injected[f]
}

// CheckInvariants returns a description of every fault-tolerance
// invariant the drained daemon violates, empty when all hold.  Call it
// only after Drain has returned.
func (h *Harness) CheckInvariants() []string {
	st := h.Server.Stats()
	var bad []string
	terminal := st.Done + st.Failed + st.Shed + st.Quarantined
	if st.Admitted != terminal {
		bad = append(bad, fmt.Sprintf("job lost: admitted %d but only %d terminal", st.Admitted, terminal))
	}
	if st.Queued != 0 || st.Running != 0 {
		bad = append(bad, fmt.Sprintf("jobs stranded after drain: %d queued, %d running", st.Queued, st.Running))
	}
	if st.DoubleReports != 0 {
		bad = append(bad, fmt.Sprintf("%d double-reported terminal transitions", st.DoubleReports))
	}
	if st.StoreConflicts != 0 {
		bad = append(bad, fmt.Sprintf("%d conflicting result-store writes", st.StoreConflicts))
	}
	return bad
}
