package chaostest

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/flexray-go/coefficient/internal/experiment"
	"github.com/flexray-go/coefficient/internal/serve"
)

// frameBounds returns every journal offset that ends a complete record
// frame (4-byte length + 4-byte CRC + payload), starting with 0 — the
// set of byte counts a crash could have left fully synced.
func frameBounds(data []byte) []int {
	bounds := []int{0}
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if off+8+n > len(data) {
			break
		}
		off += 8 + n
		bounds = append(bounds, off)
	}
	return bounds
}

// copyResults duplicates the persistent result files of one state dir
// into another.
func copyResults(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		if os.IsNotExist(err) {
			return
		}
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashAtEveryJournalPrefixRecovers is the crash-recovery property
// check: a chaos run records a journal, then every frame-aligned prefix
// of it — each one a state the daemon could have crashed in — boots a
// fresh daemon.  For every prefix the boot must succeed, every admitted
// job must reach exactly one terminal state, and every completed job
// must produce the exact bytes of a serial offline run, whether its
// result was re-served from the persistent store or re-executed.  Odd
// prefixes boot WITHOUT the result files, forcing the re-execution path
// (a `done` record whose result is gone must downgrade and re-run).
func TestCrashAtEveryJournalPrefixRecovers(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state")
	cfg := baseConfig()
	cfg.StateDir = state
	h, err := New(cfg, Plan{Seed: 42, TransientPct: 30, PanicPct: 10})
	if err != nil {
		t.Fatal(err)
	}
	h.Server.Start()

	crits := []string{"low", "", "high"}
	specs := make([]serve.JobSpec, 5)
	hashToSpec := make(map[string]serve.JobSpec)
	ids := make([]string, len(specs))
	for i := range specs {
		spec := quickSpec(uint64(600 + i))
		spec.Criticality = crits[i%len(crits)]
		specs[i] = spec
		job, cached, err := h.Server.Submit(spec)
		if err != nil || cached != nil {
			t.Fatalf("submit %d: cached %v, err %v", i, cached, err)
		}
		hashToSpec[job.Hash] = spec
		ids[i] = job.ID
	}
	if err := drain(t, h.Server, 2*time.Minute); err != nil {
		t.Fatalf("phase-1 drain: %v", err)
	}
	for _, v := range h.CheckInvariants() {
		t.Fatalf("phase-1 invariant: %s", v)
	}

	wal, err := os.ReadFile(filepath.Join(state, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	bounds := frameBounds(wal)
	if len(bounds) < 6 {
		t.Fatalf("journal too small to be interesting: %d frames", len(bounds)-1)
	}

	// One deterministic offline reference table per scenario hash.
	offline := make(map[string]string, len(hashToSpec))
	for hash, spec := range hashToSpec {
		rows, err := experiment.Degradation(experiment.DegradationOptions{
			Seed: spec.Seed, Quick: spec.Quick, Parallel: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		offline[hash] = experiment.DegradationTable(rows).String()
	}

	recoverFrom := func(t *testing.T, journalBytes []byte, withResults bool) {
		t.Helper()
		dir := filepath.Join(t.TempDir(), "recovered")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "journal.wal"), journalBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if withResults {
			copyResults(t, filepath.Join(state, "results"), filepath.Join(dir, "results"))
		}
		rcfg := baseConfig()
		rcfg.StateDir = dir
		srv, err := serve.New(rcfg) // no chaos: the rerun is clean
		if err != nil {
			t.Fatalf("boot from crash image: %v", err)
		}
		srv.Start()
		if err := drain(t, srv, 2*time.Minute); err != nil {
			t.Fatalf("drain recovered daemon: %v", err)
		}
		st := srv.Stats()
		terminal := st.Done + st.Failed + st.Shed + st.Quarantined
		if st.Admitted != terminal || st.Queued != 0 || st.Running != 0 {
			t.Fatalf("job lost after recovery: %+v", st)
		}
		if st.DoubleReports != 0 || st.StoreConflicts != 0 {
			t.Fatalf("double report after recovery: %+v", st)
		}
		for _, id := range ids {
			job, ok := srv.Job(id)
			if !ok {
				continue // not admitted yet at this crash point
			}
			doc := srv.Status(job)
			switch doc.State {
			case "done":
				res, ok := srv.Store().Get(job.Hash)
				if !ok {
					t.Fatalf("done job %s has no result", id)
				}
				if res.Table != offline[job.Hash] {
					t.Errorf("job %s: recovered result differs from serial offline run", id)
				}
			case "failed", "shed", "quarantined":
				// Terminal states recorded before the crash are preserved.
			default:
				t.Errorf("job %s left non-terminal after recovery drain: %s", id, doc.State)
			}
		}
	}

	for i, k := range bounds {
		recoverFrom(t, wal[:k], i%2 == 0)
	}

	// A torn, non-frame-aligned tail must truncate, not abort.
	torn := append(append([]byte{}, wal[:bounds[2]]...), wal[bounds[2]:bounds[2]+5]...)
	dir := filepath.Join(t.TempDir(), "torn")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal.wal"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	rcfg := baseConfig()
	rcfg.StateDir = dir
	srv, err := serve.New(rcfg)
	if err != nil {
		t.Fatalf("boot from torn journal: %v", err)
	}
	if got := srv.Stats().JournalTruncatedBytes; got != 5 {
		t.Errorf("journalTruncatedBytes = %d, want 5", got)
	}
	srv.Start()
	if err := drain(t, srv, 2*time.Minute); err != nil {
		t.Fatalf("drain after torn boot: %v", err)
	}
}
