package chaostest

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/flexray-go/coefficient/internal/experiment"
	"github.com/flexray-go/coefficient/internal/scenario"
	"github.com/flexray-go/coefficient/internal/serve"
)

func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func baseConfig() serve.Config {
	return serve.Config{
		Workers:         4,
		QueueCapacity:   32,
		Retry:           serve.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
		QuarantineAfter: 3,
		Sleep:           instantSleep,
	}
}

func quickSpec(seed uint64) serve.JobSpec {
	return serve.JobSpec{Seed: seed, Quick: true, Parallel: 2}
}

func drain(t *testing.T, s *serve.Server, timeout time.Duration) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.Drain(ctx)
}

// TestChaosMixedFaultsPreserveInvariants is the headline chaos run:
// a batch of mixed-criticality jobs under randomized (but seeded)
// transient faults and worker panics.  Whatever the fault schedule does,
// no job may be lost or double-reported, and every job that still
// completes must produce the exact bytes of a serial offline run.
func TestChaosMixedFaultsPreserveInvariants(t *testing.T) {
	h, err := New(baseConfig(), Plan{Seed: 42, TransientPct: 30, PanicPct: 10})
	if err != nil {
		t.Fatal(err)
	}
	h.Server.Start()

	crits := []string{"low", "", "high"}
	var jobs []*serve.Job
	for i := 0; i < 12; i++ {
		spec := quickSpec(uint64(100 + i))
		spec.Criticality = crits[i%len(crits)]
		job, cached, err := h.Server.Submit(spec)
		if err != nil || cached != nil {
			t.Fatalf("submit %d: cached %v, err %v", i, cached, err)
		}
		jobs = append(jobs, job)
	}
	if err := drain(t, h.Server, 2*time.Minute); err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, v := range h.CheckInvariants() {
		t.Error(v)
	}
	if h.Injected(FaultTransient) == 0 || h.Injected(FaultPanic) == 0 {
		t.Fatalf("chaos plan injected nothing: %d transient, %d panic",
			h.Injected(FaultTransient), h.Injected(FaultPanic))
	}

	// Surviving results are byte-identical to a serial offline run.
	compared := 0
	for _, job := range jobs {
		st := h.Server.Status(job)
		if st.State != "done" || compared >= 3 {
			continue
		}
		compared++
		res, ok := h.Server.Store().Get(job.Hash)
		if !ok {
			t.Fatalf("done job %s has no stored result", job.ID)
		}
		rows, err := experiment.Degradation(experiment.DegradationOptions{
			Seed: job.Spec.Seed, Quick: true, Parallel: 1,
		})
		if err != nil {
			t.Fatalf("offline run: %v", err)
		}
		if want := experiment.DegradationTable(rows).String(); res.Table != want {
			t.Errorf("job %s: daemon result differs from serial offline run", job.ID)
		}
	}
	if compared == 0 {
		t.Error("chaos plan killed every job; no result survived to compare")
	}
}

// TestChaosDeadlineStormForcedDrainTerminates wedges every attempt (a
// storm of stuck cells).  Jobs with deadlines fail on their own; jobs
// without are freed only by the forced drain — which must still
// terminate, with every job accounted for.
func TestChaosDeadlineStormForcedDrainTerminates(t *testing.T) {
	h, err := New(baseConfig(), Plan{Seed: 7, SlowPct: 100})
	if err != nil {
		t.Fatal(err)
	}
	h.Server.Start()

	deadlined := 0
	for i := 0; i < 8; i++ {
		spec := quickSpec(uint64(200 + i))
		if i%2 == 0 {
			spec.Deadline = scenario.Duration(20 * time.Millisecond)
			deadlined++
		}
		if _, _, err := h.Server.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	err = drain(t, h.Server, 500*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want forced-drain DeadlineExceeded", err)
	}
	for _, v := range h.CheckInvariants() {
		t.Error(v)
	}
	st := h.Server.Stats()
	if st.Failed != 8 {
		t.Errorf("failed = %d, want all 8 (deadlined %d, drain-cancelled %d)",
			st.Failed, deadlined, 8-deadlined)
	}
	if h.Injected(FaultSlow) == 0 {
		t.Error("no slow cells injected")
	}
}

// TestChaosPoisonedScenarioQuarantined drives one scenario that panics
// on every attempt: the daemon must quarantine it after the configured
// panic count, refuse resubmission, and leave healthy jobs untouched.
func TestChaosPoisonedScenarioQuarantined(t *testing.T) {
	poisoned := quickSpec(300)
	hash, err := poisoned.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.QuarantineAfter = 2
	cfg.Retry.MaxAttempts = 10
	h, err := New(cfg, Plan{Seed: 1, Poisoned: map[string]bool{hash: true}})
	if err != nil {
		t.Fatal(err)
	}
	h.Server.Start()

	bad, _, err := h.Server.Submit(poisoned)
	if err != nil {
		t.Fatal(err)
	}
	good, _, err := h.Server.Submit(quickSpec(301))
	if err != nil {
		t.Fatal(err)
	}
	if err := drain(t, h.Server, 2*time.Minute); err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, v := range h.CheckInvariants() {
		t.Error(v)
	}
	badSt := h.Server.Status(bad)
	if badSt.State != "quarantined" || len(badSt.Attempts) != 2 {
		t.Fatalf("poisoned job: state %s, %d attempts; want quarantined after 2",
			badSt.State, len(badSt.Attempts))
	}
	if !strings.Contains(badSt.Attempts[0].Error, "chaos: injected panic") {
		t.Errorf("attempt error %q missing injected panic value", badSt.Attempts[0].Error)
	}
	if st := h.Server.Status(good); st.State != "done" {
		t.Errorf("healthy job caught in quarantine: state %s (err %q)", st.State, st.Error)
	}
	if _, _, err := h.Server.Submit(poisoned); !errors.Is(err, serve.ErrQuarantined) {
		t.Errorf("resubmit of poisoned scenario: err = %v, want ErrQuarantined", err)
	}
}
