package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"github.com/flexray-go/coefficient/internal/experiment"
	"github.com/flexray-go/coefficient/internal/scenario"
)

// JobSpec is the wire form of one simulation job: which scenario to run
// under the graceful-degradation harness, and how the service should
// treat the job (criticality, deadline).  Unknown fields are rejected at
// decode time so client typos surface as 400s, like the scenario DSL.
type JobSpec struct {
	// Scenario is the fault timeline to simulate; nil selects the
	// built-in BER-step-plus-blackout degradation scenario.
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
	// Seed drives arrivals, fault injection, and retry jitter.
	Seed uint64 `json:"seed"`
	// Quick shrinks the simulated horizon for smoke jobs.
	Quick bool `json:"quick,omitempty"`
	// Setting selects the reliability goal: "BER-7" (default) or "BER-9".
	Setting string `json:"setting,omitempty"`
	// Minislots is the dynamic segment size (default 50).
	Minislots int `json:"minislots,omitempty"`
	// Parallel is the in-job sweep worker count (0 = all cores).  The
	// result is byte-identical for every value, so it does not
	// participate in the scenario hash.
	Parallel int `json:"parallel,omitempty"`
	// Criticality is "low", "normal" (default) or "high"; it decides who
	// sheds whom when the admission queue is full.
	Criticality string `json:"criticality,omitempty"`
	// Deadline bounds the job's wall-clock execution ("500ms", "30s").
	// Zero means no deadline.
	Deadline scenario.Duration `json:"deadline,omitempty"`
}

// Validate checks the spec's semantic rules.
func (s *JobSpec) Validate() error {
	if s.Scenario != nil {
		if err := s.Scenario.Validate(); err != nil {
			return err
		}
	}
	switch s.Setting {
	case "", "BER-7", "BER-9":
	default:
		return fmt.Errorf("unknown setting %q (want BER-7 or BER-9)", s.Setting)
	}
	if s.Minislots < 0 {
		return fmt.Errorf("minislots %d negative", s.Minislots)
	}
	if s.Parallel < 0 {
		return fmt.Errorf("parallel %d negative", s.Parallel)
	}
	if _, err := ParseCriticality(s.Criticality); err != nil {
		return err
	}
	if s.Deadline < 0 {
		return fmt.Errorf("deadline %v negative", s.Deadline.Std())
	}
	return nil
}

// setting maps the wire label to the experiment setting.
func (s *JobSpec) setting() experiment.Scenario {
	if s.Setting == "BER-9" {
		return experiment.BER9()
	}
	return experiment.BER7()
}

// CanonicalHash returns the result-store key: a SHA-256 over the
// canonical JSON encoding of exactly the fields that determine the
// simulation's output.  Parallel, criticality and deadline are excluded
// — the runner's determinism contract makes the result byte-identical
// across parallelism degrees, and the service knobs do not touch the
// simulation at all — so two submissions that must produce the same
// table always share a cache entry.  encoding/json writes map keys in
// sorted order, which makes the scenario encoding canonical.
func (s *JobSpec) CanonicalHash() (string, error) {
	canonical := struct {
		Scenario  *scenario.Scenario `json:"scenario"`
		Seed      uint64             `json:"seed"`
		Quick     bool               `json:"quick"`
		Setting   string             `json:"setting"`
		Minislots int                `json:"minislots"`
	}{s.Scenario, s.Seed, s.Quick, s.setting().Label, s.Minislots}
	data, err := json.Marshal(canonical)
	if err != nil {
		return "", fmt.Errorf("hash spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// State is a job's position in the service's state machine.
type State uint8

// Job states.  StateQueued and StateRunning are transient; the rest are
// terminal — every admitted job reaches exactly one terminal state
// (the no-job-lost / no-double-report invariant the chaostest suite
// asserts).
const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = iota
	// StateRunning: a worker is executing (or retrying) the job.
	StateRunning
	// StateDone: the result is in the store.
	StateDone
	// StateFailed: permanent error, retries exhausted, or deadline
	// exceeded.
	StateFailed
	// StateShed: evicted from the queue by a higher-criticality
	// admission.
	StateShed
	// StateQuarantined: the job's scenario hash panicked once too often
	// and is now refused.
	StateQuarantined
	stateCount
)

// String returns the wire name of the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateShed:
		return "shed"
	case StateQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateShed || s == StateQuarantined
}

// Attempt records one failed execution attempt and the deterministic
// backoff slept before the next one; together they form the job's retry
// timeline, which is byte-identical for a given (seed, scenario hash,
// failure schedule) at every worker count and parallelism degree.
type Attempt struct {
	// Attempt is the 1-based attempt number.
	Attempt int `json:"attempt"`
	// Error describes the failure.
	Error string `json:"error"`
	// Panic marks a recovered worker panic.
	Panic bool `json:"panic,omitempty"`
	// Backoff is the jittered wait before the next attempt; zero when no
	// retry followed.
	Backoff scenario.Duration `json:"backoff,omitempty"`
}

// Job is one admitted submission.  All mutable fields are guarded by the
// owning Server's mutex; workers and handlers never touch them directly.
type Job struct {
	// ID identifies the job ("j3-ab12cd34"): a submission sequence
	// number plus a scenario-hash prefix, deterministic across runs.
	ID string
	// Hash is the canonical scenario hash (the result-store key).
	Hash string
	// Spec is the submitted spec.
	Spec JobSpec
	// Crit is the parsed criticality.
	Crit Criticality
	// Deadline is the parsed per-job deadline (0 = none).
	Deadline time.Duration

	// seq is the admission sequence number the ID embeds; it defines the
	// deterministic re-enqueue order after a crash.
	seq int

	// state, attempts and errMsg are guarded by the Server's mutex.
	state    State
	attempts []Attempt
	errMsg   string
}

// parseState maps a wire name back to a State, the inverse of String
// for the real states (recovery replays journal records by wire name).
func parseState(s string) (State, bool) {
	for st := State(0); st < stateCount; st++ {
		if st.String() == s {
			return st, true
		}
	}
	return 0, false
}
