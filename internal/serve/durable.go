package serve

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"

	"github.com/flexray-go/coefficient/internal/serve/journal"
)

// This file is the server side of the durability layer (DESIGN.md §12):
// opening the journal and persistent result store, journaling every
// state transition, replaying the journal through the recovery state
// machine at boot, and degrading to the in-memory store when the disk
// misbehaves.
//
// Write ordering is the whole contract:
//
//   - an `admitted` record is fsynced before Submit returns, so any job
//     a client was told about survives a crash;
//   - a result file is atomically persisted before the `done` record,
//     so a `done` in the journal implies the result is on disk — and a
//     `done` whose result is missing (crash in between, or a corrupt
//     file quarantined at load) simply downgrades to an interrupted job
//     that re-executes deterministically.

// openDurability opens (or creates) the state directory, loads the
// persistent results into the in-memory store, replays the journal
// through the recovery state machine, and compacts the journal to a
// fresh snapshot of the recovered state.  Corrupt records and corrupt
// result files never fail it; only real I/O errors do.
func (s *Server) openDurability() error {
	fsys := s.cfg.FS
	if fsys == nil {
		fsys = journal.OS()
	}
	if err := fsys.MkdirAll(s.cfg.StateDir); err != nil {
		return fmt.Errorf("state dir: %w", err)
	}
	disk, err := journal.OpenResultStore(fsys, filepath.Join(s.cfg.StateDir, "results"))
	if err != nil {
		return fmt.Errorf("result store: %w", err)
	}
	payloads, corrupt, err := disk.Load()
	if err != nil {
		return fmt.Errorf("result store: %w", err)
	}
	hashes := make([]string, 0, len(payloads))
	for h := range payloads {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, hash := range hashes {
		var res Result
		if jerr := json.Unmarshal(payloads[hash], &res); jerr != nil || res.Hash != hash {
			// A checksum-valid file with an alien schema: skip it; any job
			// that needs it re-executes.
			corrupt++
			continue
		}
		if perr := s.store.Put(&res); perr != nil {
			return fmt.Errorf("seed store: %w", perr)
		}
	}

	jrn, replay, err := journal.Open(fsys, s.cfg.StateDir, journal.Options{
		Fsync:    s.cfg.Fsync,
		MaxBytes: s.cfg.JournalMaxBytes,
	})
	if err != nil {
		return err
	}
	s.disk = disk
	s.jrn = jrn
	s.corruptFiles = corrupt
	s.journalTruncated = replay.TruncatedBytes
	s.recoverRecords(replay.Records)

	// Rewrite the journal as a snapshot of the recovered state: replayed
	// history collapses, rejected and corrupt records disappear, and the
	// next crash replays only live state.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// recoverRecords is the recovery state machine: it folds the replayed
// records into per-job state, then reinstates every job — terminal jobs
// go straight to the status API (and quarantined hashes re-poison the
// quarantine), while jobs that were admitted or running at crash time
// are re-enqueued in their original criticality+FIFO order.  Execution
// is seed-deterministic, so a re-enqueued job reproduces the exact
// bytes an uninterrupted run would have stored.
//
//lint:deterministic
func (s *Server) recoverRecords(recs []journal.Record) {
	byID := make(map[string]*Job)
	var order []*Job // admission order, the deterministic re-enqueue order
	for _, rec := range recs {
		switch rec.Kind {
		case journal.KindAdmitted:
			var spec JobSpec
			if err := json.Unmarshal(rec.Spec, &spec); err != nil {
				// An admitted record whose spec does not decode cannot be
				// re-executed; drop the job rather than abort the boot.
				continue
			}
			crit, err := ParseCriticality(rec.Crit)
			if err != nil {
				crit = CritNormal
			}
			job := &Job{
				ID:       rec.JobID,
				Hash:     rec.Hash,
				Spec:     spec,
				Crit:     crit,
				Deadline: spec.Deadline.Std(),
				seq:      rec.Seq,
				state:    StateQueued,
			}
			if _, dup := byID[rec.JobID]; !dup {
				byID[rec.JobID] = job
				order = append(order, job)
			}
		case journal.KindRejected:
			// The submission was rolled back (no queue slot); it was never
			// acknowledged, so it does not exist after recovery.
			if job, ok := byID[rec.JobID]; ok {
				delete(byID, rec.JobID)
				for i, j := range order {
					if j == job {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
		case journal.KindRunning:
			if job, ok := byID[rec.JobID]; ok && !job.state.Terminal() {
				job.state = StateRunning
			}
		case journal.KindAttempt:
			if job, ok := byID[rec.JobID]; ok {
				var a Attempt
				if err := json.Unmarshal(rec.Attempt, &a); err == nil {
					job.attempts = append(job.attempts, a)
				}
			}
		default:
			if st, ok := parseState(rec.Kind); ok && st.Terminal() {
				if job, jok := byID[rec.JobID]; jok && !job.state.Terminal() {
					job.state = st
					job.errMsg = rec.Error
				}
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, job := range order {
		if job.state == StateDone {
			if _, ok := s.store.Get(job.Hash); !ok {
				// The done record outlived its result (crash between rename
				// and append, or the file was corrupt): downgrade to an
				// interrupted job and recompute deterministically.
				job.state = StateQueued
				job.errMsg = ""
			}
		}
		s.jobs[job.ID] = job
		s.admitted++
		if job.seq > s.seq {
			s.seq = job.seq
		}
		if job.state.Terminal() {
			s.counts[job.state]++
			if job.state == StateQuarantined {
				s.quar.poison(job.Hash)
			}
			continue
		}
		// Interrupted: re-enqueue with a fresh retry budget.  order is
		// admission order, so per-tier FIFO positions are reconstructed
		// exactly.
		job.state = StateQueued
		job.attempts = nil
		s.counts[StateQueued]++
		s.q.forceEnqueue(job)
		s.recovered++
	}
}

// degradeLocked drops to the in-memory store after a durable-state I/O
// error: journaling and result persistence stop, diskDegraded surfaces
// on /healthz, and — under DiskFail — admission is refused.  Caller
// holds s.mu.
func (s *Server) degradeLocked(err error) {
	if s.diskDegraded {
		return
	}
	s.diskDegraded = true
	s.diskErr = err.Error()
	if s.jrn != nil {
		// The handle is already suspect; a close failure changes nothing.
		if cerr := s.jrn.Close(); cerr != nil {
			s.diskErr += "; " + cerr.Error()
		}
		s.jrnStats = journal.Stats{}
		s.jrn = nil
	}
	s.disk = nil
}

// journalLocked appends one record, handling degradation and
// compaction.  Caller holds s.mu; returns the append error only when
// the server still considers durability mandatory (DiskFail), so most
// call sites can ignore it.
func (s *Server) journalLocked(rec journal.Record) error {
	if s.jrn == nil {
		if s.diskDegraded {
			return ErrDisk
		}
		return nil
	}
	if err := s.jrn.Append(rec); err != nil {
		s.degradeLocked(err)
		return fmt.Errorf("%w: %v", ErrDisk, err)
	}
	s.jrnStats = s.jrn.Stats()
	if s.jrn.NeedsCompact() {
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// compactLocked rewrites the journal as a snapshot of the live jobs
// map, in admission order.  Caller holds s.mu.
func (s *Server) compactLocked() error {
	if s.jrn == nil {
		return nil
	}
	snapshot, err := s.snapshotLocked()
	if err != nil {
		s.degradeLocked(err)
		return fmt.Errorf("%w: %v", ErrDisk, err)
	}
	if err := s.jrn.Compact(snapshot); err != nil {
		s.degradeLocked(err)
		return fmt.Errorf("%w: %v", ErrDisk, err)
	}
	s.jrnStats = s.jrn.Stats()
	return nil
}

// snapshotLocked renders the jobs map as the minimal record sequence
// that replays to the current state: per job (in admission order) one
// admitted record, its attempts, and its terminal record if it has one.
// A running job snapshots as admitted — on replay that re-enqueues it,
// which is exactly what a crash at this instant should do.
func (s *Server) snapshotLocked() ([]journal.Record, error) {
	jobs := make([]*Job, 0, len(s.jobs))
	for _, job := range s.jobs {
		jobs = append(jobs, job)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	recs := make([]journal.Record, 0, len(jobs))
	for _, job := range jobs {
		adm, err := admittedRecord(job)
		if err != nil {
			return nil, err
		}
		recs = append(recs, adm)
		for _, a := range job.attempts {
			ar, err := attemptRecord(job, a)
			if err != nil {
				return nil, err
			}
			recs = append(recs, ar)
		}
		if job.state.Terminal() {
			recs = append(recs, journal.Record{Kind: job.state.String(), JobID: job.ID, Error: job.errMsg})
		}
	}
	return recs, nil
}

// admittedRecord renders the admission record carrying everything
// recovery needs to reconstruct and re-execute the job.
func admittedRecord(job *Job) (journal.Record, error) {
	spec, err := json.Marshal(job.Spec)
	if err != nil {
		return journal.Record{}, fmt.Errorf("encode spec of %s: %w", job.ID, err)
	}
	return journal.Record{
		Kind:  journal.KindAdmitted,
		Seq:   job.seq,
		JobID: job.ID,
		Hash:  job.Hash,
		Crit:  job.Crit.String(),
		Spec:  spec,
	}, nil
}

// attemptRecord renders one retry-timeline entry.
func attemptRecord(job *Job, a Attempt) (journal.Record, error) {
	data, err := json.Marshal(a)
	if err != nil {
		return journal.Record{}, fmt.Errorf("encode attempt of %s: %w", job.ID, err)
	}
	return journal.Record{Kind: journal.KindAttempt, JobID: job.ID, Attempt: data}, nil
}

// persistResult writes res to the persistent result store, before the
// done record is journaled.  A persistence failure degrades durability
// but never fails the job: the result is already correct in memory.
func (s *Server) persistResult(res *Result) {
	s.mu.Lock()
	disk := s.disk
	s.mu.Unlock()
	if disk == nil {
		return
	}
	payload, err := json.Marshal(res)
	if err == nil {
		err = disk.Put(res.Hash, payload)
	}
	if err != nil {
		s.mu.Lock()
		s.degradeLocked(err)
		s.mu.Unlock()
	}
}
