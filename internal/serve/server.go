package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/flexray-go/coefficient/internal/scenario"
	"github.com/flexray-go/coefficient/internal/serve/journal"
)

// Server is the simulation daemon: admission control, worker pool,
// result store, and the HTTP API.  Create one with New, launch the
// workers with Start, expose Handler over HTTP, and stop with Drain.
type Server struct {
	cfg   Config
	q     *queue
	store *Store
	quar  *quarantine

	// runCtx is the execution context every job attempt derives from;
	// runCancel is the drain deadline's hard stop.
	runCtx    context.Context
	runCancel context.CancelFunc

	// workersDone closes when every worker has exited.
	workersDone chan struct{}

	mu            sync.Mutex
	jobs          map[string]*Job
	seq           int
	counts        [stateCount]int
	admitted      int
	draining      bool
	started       bool
	doubleReports int

	// Durability state (nil / zero when Config.StateDir is empty).
	jrn              *journal.Journal
	disk             *journal.ResultStore
	jrnStats         journal.Stats
	diskDegraded     bool
	diskErr          string
	recovered        int
	corruptFiles     int
	journalTruncated int
}

// New builds a Server from cfg (zero-value fields get defaults).  With
// Config.StateDir set it also opens the durability layer and replays
// the journal — corrupt state on disk never fails it (torn tails and
// bad records are quarantined), but a real I/O error does under
// DiskFail; under DiskDegrade the server comes up memory-only with
// diskDegraded surfaced on /healthz.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		q:           newQueue(cfg.QueueCapacity),
		store:       NewStore(),
		quar:        newQuarantine(cfg.QuarantineAfter),
		runCtx:      ctx,
		runCancel:   cancel,
		workersDone: make(chan struct{}),
		jobs:        make(map[string]*Job),
	}
	if cfg.StateDir != "" {
		if err := s.openDurability(); err != nil {
			if cfg.DiskPolicy == DiskFail {
				cancel()
				return nil, fmt.Errorf("serve: open durable state: %w", err)
			}
			s.mu.Lock()
			s.degradeLocked(err)
			s.mu.Unlock()
		}
	}
	return s, nil
}

// Store exposes the result store (read access for callers embedding the
// server in tests or tools).
func (s *Server) Store() *Store { return s.store }

// Start launches the worker pool.  It may be called once.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.workerLoop()
		}()
	}
	done := s.workersDone
	go func() {
		wg.Wait()
		close(done)
	}()
}

// Drain performs the graceful shutdown: stop admitting, let the workers
// finish every queued and in-flight job, and flush the result store.
// When ctx expires first, in-flight attempts are hard-cancelled (they
// stop at the next cell boundary or retry sleep) and the remaining
// queued jobs fail fast, so the drain still terminates; the store is
// flushed either way and ctx's error is returned to signal the forced
// stop.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	started := s.started
	s.mu.Unlock()
	if !alreadyDraining {
		s.q.close()
	}
	var forced error
	if started {
		select {
		case <-s.workersDone:
		case <-ctx.Done():
			forced = ctx.Err()
			s.runCancel()
			<-s.workersDone
		}
	}
	if dir := s.cfg.ResultDir; dir != "" {
		if err := s.store.Flush(dir); err != nil {
			return err
		}
	}
	// Close the journal last: every terminal transition the drain produced
	// is already appended, so the final sync makes the shutdown state
	// durable.  A close failure is only reported when the drain itself
	// succeeded — the forced-stop error stays the primary signal.
	s.mu.Lock()
	jrn := s.jrn
	s.jrn = nil
	s.mu.Unlock()
	if jrn != nil {
		if err := jrn.Close(); err != nil && forced == nil {
			return fmt.Errorf("serve: close journal: %w", err)
		}
	}
	return forced
}

// Stats is the /healthz snapshot.
type Stats struct {
	// Queued..Quarantined count jobs per state.
	Queued, Running, Done, Failed, Shed, Quarantined int
	// QueueDepth is the current admission-queue occupancy.
	QueueDepth int
	// Admitted counts every job that entered the queue.
	Admitted int
	// Results counts distinct stored results.
	Results int
	// DoubleReports counts attempted terminal-to-terminal transitions;
	// always zero unless the state machine is broken.
	DoubleReports int
	// StoreConflicts counts conflicting result writes; always zero
	// unless determinism is broken.
	StoreConflicts int
	// Draining reports whether admission has stopped.
	Draining bool
	// Workers is the configured worker count.
	Workers int
	// QuarantinedHashes lists the poisoned scenario hashes, sorted.
	QuarantinedHashes []string

	// JournalRecords and JournalBytes size the live write-ahead journal;
	// JournalLag counts appended records not yet fsynced (FsyncBatch).
	// All zero when the server runs without a state directory.
	JournalRecords int64
	JournalBytes   int64
	JournalLag     int
	// StoreEntries counts result files in the persistent result store.
	StoreEntries int
	// DiskDegraded reports that durable state was abandoned after an I/O
	// error; DiskError is that error.
	DiskDegraded bool
	DiskError    string
	// RecoveredJobs counts interrupted jobs re-enqueued by journal replay
	// at boot.
	RecoveredJobs int
	// CorruptFiles counts result files and journal records quarantined or
	// skipped at boot; JournalTruncatedBytes counts torn-tail bytes moved
	// to the .corrupt sidecar.
	CorruptFiles          int
	JournalTruncatedBytes int
}

// Stats returns a consistent snapshot of the service state.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Queued:        s.counts[StateQueued],
		Running:       s.counts[StateRunning],
		Done:          s.counts[StateDone],
		Failed:        s.counts[StateFailed],
		Shed:          s.counts[StateShed],
		Quarantined:   s.counts[StateQuarantined],
		Admitted:      s.admitted,
		DoubleReports: s.doubleReports,
		Draining:      s.draining,
		Workers:       s.cfg.Workers,

		JournalRecords:        s.jrnStats.Records,
		JournalBytes:          s.jrnStats.Bytes,
		JournalLag:            s.jrnStats.Lag,
		DiskDegraded:          s.diskDegraded,
		DiskError:             s.diskErr,
		RecoveredJobs:         s.recovered,
		CorruptFiles:          s.corruptFiles,
		JournalTruncatedBytes: s.journalTruncated,
	}
	disk := s.disk
	s.mu.Unlock()
	if disk != nil {
		st.StoreEntries = disk.Entries()
	}
	st.QueueDepth = s.q.depth()
	st.Results = s.store.Len()
	st.StoreConflicts = s.store.Conflicts()
	st.QuarantinedHashes = s.quar.List()
	return st
}

// Job returns the job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// transition moves job to state `to`, enforcing the terminal-once
// invariant: a job already in a terminal state is never moved again
// (the attempt is counted as a double report instead), so no job can be
// reported completed twice.  Every transition is journaled in the order
// it is applied — the append happens under the same lock hold, so the
// journal replays to exactly the state sequence the server went
// through.
func (s *Server) transition(job *Job, to State, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if job.state.Terminal() {
		s.doubleReports++
		return
	}
	s.counts[job.state]--
	s.counts[to]++
	job.state = to
	if errMsg != "" {
		job.errMsg = errMsg
	}
	rec := journal.Record{Kind: to.String(), JobID: job.ID}
	if to.Terminal() {
		rec.Error = errMsg
	}
	// A journal failure here degrades durability (journalLocked flips
	// diskDegraded) but cannot un-happen the transition.
	s.journalAfterTheFact(rec)
}

// journalAfterTheFact appends a record whose event has already been
// applied in memory: the only possible reaction to an append failure is
// the degradation journalLocked itself performs, so the error carries
// no extra information for the caller.
func (s *Server) journalAfterTheFact(rec journal.Record) {
	if err := s.journalLocked(rec); err != nil && !errors.Is(err, ErrDisk) {
		// journalLocked only returns ErrDisk-wrapped errors; this branch
		// exists to keep the contract honest if that ever changes.
		s.diskErr = err.Error()
	}
}

// recordAttempt appends one entry to the job's retry timeline.
func (s *Server) recordAttempt(job *Job, a Attempt) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job.attempts = append(job.attempts, a)
	if rec, err := attemptRecord(job, a); err == nil {
		s.journalAfterTheFact(rec)
	}
}

// Submit admits a spec programmatically (the HTTP handler and tests
// share this path).  Exactly one of the returns is meaningful:
// a cached *Result, an admitted *Job, or an error classified by the
// caller via errors.Is against ErrQueueFull / ErrQuarantined /
// ErrDraining.
func (s *Server) Submit(spec JobSpec) (*Job, *Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	hash, err := spec.CanonicalHash()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if res, ok := s.store.Get(hash); ok {
		return nil, res, nil
	}
	if s.quar.Quarantined(hash) {
		return nil, nil, fmt.Errorf("%w: scenario %s", ErrQuarantined, hash)
	}
	crit, err := ParseCriticality(spec.Criticality)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, nil, ErrDraining
	}
	if s.diskDegraded && s.cfg.DiskPolicy == DiskFail {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %s", ErrDisk, s.diskErr)
	}
	s.seq++
	job := &Job{
		ID:       fmt.Sprintf("j%d-%s", s.seq, hash[:8]),
		Hash:     hash,
		Spec:     spec,
		Crit:     crit,
		Deadline: spec.Deadline.Std(),
		seq:      s.seq,
		state:    StateQueued,
	}
	s.jobs[job.ID] = job
	s.counts[StateQueued]++
	s.admitted++
	// The admitted record is fsynced before Submit returns: a 202 implies
	// the job survives a crash.  The spec marshalled for the hash above,
	// so admittedRecord cannot fail here.
	if rec, rerr := admittedRecord(job); rerr == nil {
		if jerr := s.journalLocked(rec); jerr != nil && s.cfg.DiskPolicy == DiskFail {
			// Durable admission is mandatory: unwind the registration and
			// refuse the job.  It never reached the queue.
			delete(s.jobs, job.ID)
			s.counts[StateQueued]--
			s.admitted--
			s.seq--
			s.mu.Unlock()
			return nil, nil, jerr
		}
	}
	s.mu.Unlock()

	evicted, ok := s.q.admit(job)
	if !ok {
		// Roll the registration back: the job never held a queue slot.
		// The admitted record is already on disk and cannot be unwritten;
		// a rejected record cancels it on replay.
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.counts[StateQueued]--
		s.admitted--
		s.journalAfterTheFact(journal.Record{Kind: journal.KindRejected, JobID: job.ID})
		s.mu.Unlock()
		return nil, nil, ErrQueueFull
	}
	if evicted != nil {
		s.transition(evicted, StateShed,
			fmt.Sprintf("evicted by higher-criticality job %s", job.ID))
	}
	return job, nil, nil
}

// Sentinel admission errors.
var (
	// ErrBadSpec rejects an invalid submission (HTTP 400).
	ErrBadSpec = errors.New("serve: invalid job spec")
	// ErrQueueFull rejects a submission with no evictable victim
	// (HTTP 503 + Retry-After).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrQuarantined rejects a poisoned scenario (HTTP 409).
	ErrQuarantined = errors.New("serve: scenario quarantined")
	// ErrDraining rejects submissions during shutdown
	// (HTTP 503 + Retry-After).
	ErrDraining = errors.New("serve: draining")
	// ErrDisk rejects submissions while durable state is unavailable and
	// Config.DiskPolicy is DiskFail (HTTP 507).  Under DiskDegrade the
	// server keeps accepting work memory-only and this error never
	// reaches clients.
	ErrDisk = errors.New("serve: durable state unavailable")
)

// Handler returns the HTTP API:
//
//	POST /jobs            submit a JobSpec; 202 queued, 200 cached,
//	                      400 invalid, 409 quarantined, 503 full/draining
//	GET  /jobs/{id}       job status incl. retry timeline
//	GET  /results/{hash}  cached result by canonical scenario hash
//	GET  /healthz         liveness + stats (always 200 while serving)
//	GET  /readyz          200 accepting; 503 draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /results/{hash}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// maxSpecBytes bounds a submission body; the scenario DSL is small.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	job, cached, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrBadSpec):
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrQuarantined):
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrDisk):
		writeJSON(w, http.StatusInsufficientStorage, map[string]string{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	case cached != nil:
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "cached", "hash": cached.Hash, "result": cached,
		})
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{
			"id": job.ID, "hash": job.Hash, "status": job.stateName(s),
		})
	}
}

// stateName reads the job's state under the server lock.
func (j *Job) stateName(s *Server) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.state.String()
}

// jobStatus is the GET /jobs/{id} document.
type jobStatus struct {
	ID          string            `json:"id"`
	Hash        string            `json:"hash"`
	State       string            `json:"state"`
	Criticality string            `json:"criticality"`
	Deadline    scenario.Duration `json:"deadline,omitempty"`
	Attempts    []Attempt         `json:"attempts,omitempty"`
	Error       string            `json:"error,omitempty"`
	Result      *Result           `json:"result,omitempty"`
}

// Status renders the job's current status document.
func (s *Server) Status(job *Job) jobStatus {
	s.mu.Lock()
	st := jobStatus{
		ID:          job.ID,
		Hash:        job.Hash,
		State:       job.state.String(),
		Criticality: job.Crit.String(),
		Deadline:    scenario.Duration(job.Deadline),
		Attempts:    append([]Attempt(nil), job.attempts...),
		Error:       job.errMsg,
	}
	done := job.state == StateDone
	s.mu.Unlock()
	if done {
		if res, ok := s.store.Get(job.Hash); ok {
			st.Result = res
		}
	}
	return st
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, s.Status(job))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, ok := s.store.Get(r.PathValue("hash"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown result"})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// healthDoc is the /healthz document.
type healthDoc struct {
	Queued            int      `json:"queued"`
	Running           int      `json:"running"`
	Done              int      `json:"done"`
	Failed            int      `json:"failed"`
	Shed              int      `json:"shed"`
	Quarantined       int      `json:"quarantined"`
	QueueDepth        int      `json:"queueDepth"`
	Admitted          int      `json:"admitted"`
	Results           int      `json:"results"`
	DoubleReports     int      `json:"doubleReports"`
	StoreConflicts    int      `json:"storeConflicts"`
	Draining          bool     `json:"draining"`
	Workers           int      `json:"workers"`
	QuarantinedHashes []string `json:"quarantinedHashes"`

	JournalRecords        int64  `json:"journalRecords"`
	JournalBytes          int64  `json:"journalBytes"`
	JournalLag            int    `json:"journalLag"`
	StoreEntries          int    `json:"storeEntries"`
	DiskDegraded          bool   `json:"diskDegraded"`
	DiskError             string `json:"diskError,omitempty"`
	RecoveredJobs         int    `json:"recoveredJobs"`
	CorruptFiles          int    `json:"corruptFiles"`
	JournalTruncatedBytes int    `json:"journalTruncatedBytes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	writeJSON(w, http.StatusOK, healthDoc{
		Queued: st.Queued, Running: st.Running, Done: st.Done,
		Failed: st.Failed, Shed: st.Shed, Quarantined: st.Quarantined,
		QueueDepth: st.QueueDepth, Admitted: st.Admitted,
		Results: st.Results, DoubleReports: st.DoubleReports,
		StoreConflicts: st.StoreConflicts, Draining: st.Draining,
		Workers: st.Workers, QuarantinedHashes: st.QuarantinedHashes,

		JournalRecords: st.JournalRecords, JournalBytes: st.JournalBytes,
		JournalLag: st.JournalLag, StoreEntries: st.StoreEntries,
		DiskDegraded: st.DiskDegraded, DiskError: st.DiskError,
		RecoveredJobs: st.RecoveredJobs, CorruptFiles: st.CorruptFiles,
		JournalTruncatedBytes: st.JournalTruncatedBytes,
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	diskDown := s.diskDegraded && s.cfg.DiskPolicy == DiskFail
	s.mu.Unlock()
	if draining || diskDown {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"ready": false, "draining": draining, "diskDegraded": diskDown,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "queueDepth": s.q.depth()})
}

// writeJSON emits one JSON response.  The encode error is deliberately
// only loggable by the HTTP layer (the status line is already written);
// a broken client connection must not fail the server.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The response is already committed; nothing useful remains.
		_ = err
	}
}
