package serve

import (
	"sort"
	"sync"
)

// quarantine tracks worker panics per scenario hash and poisons a hash
// after `limit` of them: further submissions are refused and the job
// that crossed the limit ends in StateQuarantined instead of being
// retried forever.  Panics — unlike transient errors — indicate the
// scenario itself drives the engine into a broken state, so replaying
// it buys nothing and costs a worker each time.
type quarantine struct {
	mu       sync.Mutex
	limit    int
	failures map[string]int
	poisoned map[string]bool
}

func newQuarantine(limit int) *quarantine {
	return &quarantine{
		limit:    limit,
		failures: make(map[string]int),
		poisoned: make(map[string]bool),
	}
}

// noteFailure records one panic for hash and reports the running count
// and whether the hash just became (or already was) quarantined.
func (q *quarantine) noteFailure(hash string) (count int, quarantined bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.failures[hash]++
	if q.failures[hash] >= q.limit {
		q.poisoned[hash] = true
	}
	return q.failures[hash], q.poisoned[hash]
}

// poison marks hash quarantined directly — the recovery path restoring
// a quarantined terminal state from the journal.
func (q *quarantine) poison(hash string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.poisoned[hash] = true
}

// Quarantined reports whether hash is poisoned.
func (q *quarantine) Quarantined(hash string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.poisoned[hash]
}

// List returns the quarantined hashes in sorted order, for /healthz.
func (q *quarantine) List() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, 0, len(q.poisoned))
	for h := range q.poisoned {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
