package serve

import (
	"sync"
	"testing"
)

func job(id string, crit Criticality) *Job {
	return &Job{ID: id, Crit: crit}
}

func TestQueuePopOrderIsCriticalityThenFIFO(t *testing.T) {
	q := newQueue(8)
	for _, j := range []*Job{
		job("l1", CritLow), job("n1", CritNormal), job("h1", CritHigh),
		job("n2", CritNormal), job("h2", CritHigh),
	} {
		if _, ok := q.admit(j); !ok {
			t.Fatalf("admit %s failed", j.ID)
		}
	}
	want := []string{"h1", "h2", "n1", "n2", "l1"}
	for _, id := range want {
		j, ok := q.pop()
		if !ok || j.ID != id {
			t.Fatalf("pop = %v/%v, want %s", j, ok, id)
		}
	}
}

func TestQueueEvictsNewestLowerCriticality(t *testing.T) {
	q := newQueue(2)
	l1, l2 := job("l1", CritLow), job("l2", CritLow)
	q.admit(l1)
	q.admit(l2)

	// Equal criticality cannot evict: the queue is full for peers.
	if _, ok := q.admit(job("l3", CritLow)); ok {
		t.Fatal("low job evicted a low job")
	}

	// A high job evicts the newest low job, keeping the FIFO head.
	evicted, ok := q.admit(job("h1", CritHigh))
	if !ok || evicted != l2 {
		t.Fatalf("admit high: evicted %v, ok %v; want l2", evicted, ok)
	}

	// Now holding {l1, h1}: a normal job still finds a low victim.
	evicted, ok = q.admit(job("n1", CritNormal))
	if !ok || evicted != l1 {
		t.Fatalf("admit normal: evicted %v, ok %v; want l1", evicted, ok)
	}

	// Holding {h1, n1}: another high job evicts the normal one.
	evicted, ok = q.admit(job("h2", CritHigh))
	if !ok || evicted == nil || evicted.ID != "n1" {
		t.Fatalf("admit high: evicted %v, ok %v; want n1", evicted, ok)
	}

	// Holding {h1, h2}: nothing below high remains; reject.
	if _, ok := q.admit(job("h3", CritHigh)); ok {
		t.Fatal("high job admitted into a full all-high queue")
	}
	if d := q.depth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestQueueCloseDrainsThenStops(t *testing.T) {
	q := newQueue(4)
	q.admit(job("a", CritNormal))
	q.admit(job("b", CritNormal))
	q.close()
	if _, ok := q.admit(job("c", CritNormal)); ok {
		t.Fatal("admit succeeded after close")
	}
	if j, ok := q.pop(); !ok || j.ID != "a" {
		t.Fatalf("pop after close = %v/%v, want a", j, ok)
	}
	if j, ok := q.pop(); !ok || j.ID != "b" {
		t.Fatalf("pop after close = %v/%v, want b", j, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop reported a job from a drained closed queue")
	}
}

func TestQueuePopBlocksUntilAdmit(t *testing.T) {
	q := newQueue(4)
	got := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		j, ok := q.pop()
		if ok {
			got <- j.ID
		} else {
			got <- "(closed)"
		}
	}()
	q.admit(job("x", CritLow))
	if id := <-got; id != "x" {
		t.Fatalf("blocked pop returned %q, want x", id)
	}
	wg.Wait()
}
