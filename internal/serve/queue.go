package serve

import "sync"

// queue is the bounded, criticality-tiered admission queue.  Dequeue
// order is highest criticality first, FIFO within a tier.  When the
// queue is full, admission may evict the newest job of the lowest tier
// strictly below the incoming job's criticality — the same
// lowest-criticality-first shedding order the bus scheduler uses — so a
// burst of low-priority work can never starve high-priority jobs of
// queue slots.
type queue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	cap      int
	// tiers is indexed by Criticality; each tier is FIFO.
	tiers  [critLevels][]*Job
	closed bool
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// depth returns the number of queued jobs.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked()
}

func (q *queue) depthLocked() int {
	n := 0
	for _, t := range q.tiers {
		n += len(t)
	}
	return n
}

// admit enqueues j.  When the queue is full it evicts the newest queued
// job of the lowest tier strictly below j's criticality, returning it
// so the caller can mark it shed; evicting the newest (not the oldest)
// keeps the victim tier's FIFO head intact, so the longest-waiting
// low-criticality job is the last of its tier to lose its slot.  ok is
// false when the queue is full with no eligible victim, or closed.
func (q *queue) admit(j *Job) (evicted *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false
	}
	if q.depthLocked() >= q.cap {
		evicted = q.evictBelowLocked(j.Crit)
		if evicted == nil {
			return nil, false
		}
	}
	q.tiers[j.Crit] = append(q.tiers[j.Crit], j)
	q.nonEmpty.Signal()
	return evicted, true
}

// evictBelowLocked removes and returns the newest job of the lowest
// non-empty tier strictly below crit, or nil.
func (q *queue) evictBelowLocked(crit Criticality) *Job {
	for tier := Criticality(0); tier < crit; tier++ {
		if n := len(q.tiers[tier]); n > 0 {
			victim := q.tiers[tier][n-1]
			q.tiers[tier] = q.tiers[tier][:n-1]
			return victim
		}
	}
	return nil
}

// forceEnqueue appends j to its tier regardless of capacity.  Recovery
// uses it to re-admit jobs that already held a slot before the crash:
// bouncing them against the capacity check could lose admitted work,
// which durability exists to prevent.  Called before Start, so no
// worker is racing the queue yet.
func (q *queue) forceEnqueue(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tiers[j.Crit] = append(q.tiers[j.Crit], j)
	q.nonEmpty.Signal()
}

// pop blocks until a job is available or the queue is closed and empty.
// Closing stops admission but not consumption: workers keep draining
// queued jobs, which is exactly the graceful-drain contract.
func (q *queue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for tier := Criticality(critLevels) - 1; ; tier-- {
			if len(q.tiers[tier]) > 0 {
				j := q.tiers[tier][0]
				q.tiers[tier] = q.tiers[tier][1:]
				return j, true
			}
			if tier == 0 {
				break
			}
		}
		if q.closed {
			return nil, false
		}
		q.nonEmpty.Wait()
	}
}

// close stops admission and wakes every waiting worker so they can
// drain the remaining jobs and exit.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.nonEmpty.Broadcast()
}
