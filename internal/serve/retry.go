package serve

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"github.com/flexray-go/coefficient/internal/runner"
)

// TransientError marks a failure worth retrying: the same attempt may
// succeed later without any change to the job.  Everything else —
// invalid specs, simulation setup errors, deadline expiry — is
// permanent and fails the job on first occurrence.
type TransientError struct {
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable; a nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *TransientError
	return errors.As(err, &t)
}

// RetryPolicy is the deterministic transient-failure retry schedule:
// exponential backoff with splitmix64-derived jitter.  The jitter for
// attempt k of a job is a pure function of (job seed, scenario hash, k)
// — never wall clock, never the global rand source — so the full retry
// timeline replays byte-identically for the same seed and failure
// schedule, at any worker count.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, the first included
	// (default 3).
	MaxAttempts int
	// BaseBackoff is the wait after the first failure; it doubles per
	// attempt (default 10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
}

// fill applies the documented defaults.
func (p *RetryPolicy) fill() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
}

// Backoff returns the wait after failed attempt `attempt` (1-based):
// BaseBackoff·2^(attempt−1), capped at MaxBackoff, plus a deterministic
// jitter in [0, backoff/2] derived via the runner's splitmix64 cell-seed
// mix from (seed, scenario hash, attempt).
//
//lint:deterministic
func (p RetryPolicy) Backoff(seed uint64, hash string, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	span := uint64(d/2) + 1
	jitter := time.Duration(runner.CellSeed(seed, hashWord(hash), uint64(attempt)) % span)
	return d + jitter
}

// hashWord folds the leading 16 hex digits of a canonical scenario hash
// into the uint64 the jitter derivation mixes in, so two scenarios never
// share a jitter stream.
func hashWord(hash string) uint64 {
	if len(hash) > 16 {
		hash = hash[:16]
	}
	w, err := strconv.ParseUint(hash, 16, 64)
	if err != nil {
		// Non-hex hashes only occur in hand-written tests; fold the raw
		// bytes instead of failing.
		for _, b := range []byte(hash) {
			w = w<<8 | uint64(b)
		}
	}
	return w
}

// panicError is the error form of a recovered worker panic: the panic
// value plus the panicking goroutine's stack, so a poisoned scenario is
// diagnosable from the job status alone.
type panicError struct {
	value string
	stack []byte
}

// Error implements error.
func (e *panicError) Error() string {
	return fmt.Sprintf("worker panicked: %s\n%s", e.value, e.stack)
}
