package workload

import (
	"testing"
	"time"

	"github.com/flexray-go/coefficient/internal/signal"
)

func TestBBWMessageTable(t *testing.T) {
	set := BBW()
	if err := set.Validate(); err != nil {
		t.Fatalf("BBW().Validate() = %v", err)
	}
	if len(set.Messages) != 20 {
		t.Fatalf("BBW has %d messages, want 20 (Table II)", len(set.Messages))
	}
	// Spot-check rows 1, 3 and 20 against Table II.
	m := set.Messages[0]
	if m.Offset != 280*time.Microsecond || m.Period != 8*time.Millisecond ||
		m.Deadline != 8*time.Millisecond || m.Bits != 1292 {
		t.Errorf("BBW row 1 = %+v, want offset 0.28ms period 8ms deadline 8ms 1292 bits", m)
	}
	m = set.Messages[2]
	if m.Offset != 580*time.Microsecond || m.Period != time.Millisecond || m.Bits != 1574 {
		t.Errorf("BBW row 3 = %+v, want offset 0.58ms period 1ms 1574 bits", m)
	}
	m = set.Messages[19]
	if m.Offset != 680*time.Microsecond || m.Period != time.Millisecond || m.Bits != 878 {
		t.Errorf("BBW row 20 = %+v, want offset 0.68ms period 1ms 878 bits", m)
	}
	// All static, IDs 1..20.
	for i, m := range set.Messages {
		if m.Kind != signal.Periodic {
			t.Errorf("BBW message %d kind = %v, want periodic", i+1, m.Kind)
		}
		if m.ID != i+1 {
			t.Errorf("BBW message %d ID = %d", i+1, m.ID)
		}
	}
}

func TestACCMessageTable(t *testing.T) {
	set := ACC()
	if err := set.Validate(); err != nil {
		t.Fatalf("ACC().Validate() = %v", err)
	}
	if len(set.Messages) != 20 {
		t.Fatalf("ACC has %d messages, want 20 (Table III)", len(set.Messages))
	}
	// Periods are 16, 24, 32 ms in blocks of 5, 7, 8 (Table III).
	periodCounts := make(map[time.Duration]int)
	for _, m := range set.Messages {
		periodCounts[m.Period]++
		if m.Deadline != m.Period {
			t.Errorf("ACC %q deadline %v != period %v", m.Name, m.Deadline, m.Period)
		}
	}
	if periodCounts[16*time.Millisecond] != 5 ||
		periodCounts[24*time.Millisecond] != 7 ||
		periodCounts[32*time.Millisecond] != 8 {
		t.Errorf("ACC period histogram = %v, want 5×16ms, 7×24ms, 8×32ms", periodCounts)
	}
	// Row 16 is one of the 256-bit messages.
	if set.Messages[15].Bits != 256 {
		t.Errorf("ACC row 16 bits = %d, want 256", set.Messages[15].Bits)
	}
	// Total: 12×1024 + 4×1280 + 4×256.
	if got := set.TotalBits(); got != 12*1024+4*1280+4*256 {
		t.Errorf("ACC TotalBits() = %d", got)
	}
}

func TestMessagesSpreadOverNodes(t *testing.T) {
	for _, set := range []signal.Set{BBW(), ACC()} {
		if got := set.Nodes(); got != NodeCount {
			t.Errorf("%s spans %d nodes, want %d", set.Name, got, NodeCount)
		}
	}
}

func TestSyntheticReproducible(t *testing.T) {
	a, err := Synthetic(SyntheticOptions{Messages: 40, Seed: 1})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	b, err := Synthetic(SyntheticOptions{Messages: 40, Seed: 1})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	for i := range a.Messages {
		if !sameMessage(a.Messages[i], b.Messages[i]) {
			t.Fatalf("same-seed synthetic sets differ at message %d", i)
		}
	}
	c, err := Synthetic(SyntheticOptions{Messages: 40, Seed: 2})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	same := 0
	for i := range a.Messages {
		if sameMessage(a.Messages[i], c.Messages[i]) {
			same++
		}
	}
	if same == len(a.Messages) {
		t.Error("different seeds produced identical sets")
	}
}

func TestSyntheticRespectsPaperRanges(t *testing.T) {
	set, err := Synthetic(SyntheticOptions{Messages: 200, Seed: 42})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, m := range set.Messages {
		if m.Period < 5*time.Millisecond || m.Period > 50*time.Millisecond {
			t.Errorf("%q period %v outside 5–50ms", m.Name, m.Period)
		}
		if m.Deadline < time.Millisecond || m.Deadline > 20*time.Millisecond {
			t.Errorf("%q deadline %v outside 1–20ms", m.Name, m.Deadline)
		}
		if m.Deadline > m.Period {
			t.Errorf("%q deadline %v > period %v", m.Name, m.Deadline, m.Period)
		}
	}
}

func TestSyntheticRejectsBadCount(t *testing.T) {
	if _, err := Synthetic(SyntheticOptions{Messages: 0}); err == nil {
		t.Error("Synthetic(0) accepted")
	}
}

func TestSAEAperiodic(t *testing.T) {
	for _, tt := range []struct {
		firstID int
	}{{81}, {121}} {
		set, err := SAEAperiodic(SAEAperiodicOptions{FirstID: tt.firstID, Seed: 3})
		if err != nil {
			t.Fatalf("SAEAperiodic(%d): %v", tt.firstID, err)
		}
		if len(set.Messages) != 30 {
			t.Fatalf("SAE count = %d, want 30", len(set.Messages))
		}
		for i, m := range set.Messages {
			if m.ID != tt.firstID+i {
				t.Errorf("SAE message %d ID = %d, want %d", i, m.ID, tt.firstID+i)
			}
			if m.Kind != signal.Aperiodic {
				t.Errorf("SAE message %d kind = %v", i, m.Kind)
			}
			if m.Deadline != 50*time.Millisecond || m.Period != 50*time.Millisecond {
				t.Errorf("SAE message %d period/deadline = %v/%v, want 50ms/50ms",
					i, m.Period, m.Deadline)
			}
		}
	}
}

func TestSAEDefaults(t *testing.T) {
	set, err := SAEAperiodic(SAEAperiodicOptions{})
	if err != nil {
		t.Fatalf("SAEAperiodic: %v", err)
	}
	if len(set.Messages) != 30 || set.Messages[0].ID != 81 {
		t.Errorf("defaults: %d messages, first ID %d; want 30, 81",
			len(set.Messages), set.Messages[0].ID)
	}
}

func TestMerge(t *testing.T) {
	sae, err := SAEAperiodic(SAEAperiodicOptions{FirstID: 81})
	if err != nil {
		t.Fatalf("SAEAperiodic: %v", err)
	}
	merged, err := Merge("bbw+sae", BBW(), sae)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if len(merged.Messages) != 50 {
		t.Errorf("merged has %d messages, want 50", len(merged.Messages))
	}
	if len(merged.Static()) != 20 || len(merged.Dynamic()) != 30 {
		t.Errorf("merged static/dynamic = %d/%d, want 20/30",
			len(merged.Static()), len(merged.Dynamic()))
	}
	// Colliding IDs fail.
	if _, err := Merge("dup", BBW(), BBW()); err == nil {
		t.Error("Merge with duplicate static IDs accepted")
	}
}

// sameMessage compares the scalar fields of two messages.
func sameMessage(a, b signal.Message) bool {
	return a.ID == b.ID && a.Name == b.Name && a.Node == b.Node &&
		a.Kind == b.Kind && a.Period == b.Period && a.Offset == b.Offset &&
		a.Deadline == b.Deadline && a.Bits == b.Bits && a.Priority == b.Priority
}

func TestSyntheticSignalsPacking(t *testing.T) {
	set, err := SyntheticSignals(SignalLevelOptions{Signals: 200, Seed: 5})
	if err != nil {
		t.Fatalf("SyntheticSignals: %v", err)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Packing must reduce 200 signals to far fewer frames.
	if len(set.Messages) >= 200 {
		t.Errorf("packing produced %d messages from 200 signals", len(set.Messages))
	}
	if len(set.Messages) == 0 {
		t.Fatal("no messages")
	}
	// Bits conserve.
	wantBits := 0
	for _, m := range set.Messages {
		for _, s := range m.Signals {
			wantBits += s.Bits
		}
		if m.Bits > signal.DefaultMaxPayloadBits {
			t.Errorf("message %q overflows payload: %d bits", m.Name, m.Bits)
		}
	}
	if set.TotalBits() != wantBits {
		t.Errorf("TotalBits %d != packed signal bits %d", set.TotalBits(), wantBits)
	}
	// Deterministic.
	again, err := SyntheticSignals(SignalLevelOptions{Signals: 200, Seed: 5})
	if err != nil {
		t.Fatalf("SyntheticSignals: %v", err)
	}
	if len(again.Messages) != len(set.Messages) {
		t.Errorf("same seed produced %d vs %d messages", len(again.Messages), len(set.Messages))
	}
	if _, err := SyntheticSignals(SignalLevelOptions{}); err == nil {
		t.Error("zero signal count accepted")
	}
}
