package workload

import (
	"fmt"
	"time"

	"github.com/flexray-go/coefficient/internal/fault"
	"github.com/flexray-go/coefficient/internal/signal"
)

// SignalLevelOptions parameterizes the signal-level synthetic generator,
// which models what the paper's introduction describes — ECUs exchanging
// thousands of small signals ("70 ECUs ... exchange around 2500 signals") —
// and packs them into frames with the first-fit-decreasing packer.
type SignalLevelOptions struct {
	// Signals is the number of raw signals to generate.
	Signals int
	// Nodes is the number of producing ECUs (defaults to NodeCount).
	Nodes int
	// Seed makes generation reproducible.
	Seed uint64
	// FirstID is the first frame ID for the packed messages.
	FirstID int
	// MaxPayloadBits caps the packed frame payload (defaults to the
	// FlexRay maximum).
	MaxPayloadBits int
}

// SyntheticSignals generates raw periodic signals across the ECUs (sizes
// 8-128 bits, periods from the paper's 5-50 ms range) and packs them into a
// validated static message set.  It returns the packed set along with the
// raw signal count per message for inspection.
func SyntheticSignals(opts SignalLevelOptions) (signal.Set, error) {
	if opts.Signals <= 0 {
		return signal.Set{}, fmt.Errorf("workload: signal count %d", opts.Signals)
	}
	if opts.Nodes <= 0 {
		opts.Nodes = NodeCount
	}
	if opts.FirstID <= 0 {
		opts.FirstID = 1
	}
	rng := fault.NewRNG(opts.Seed ^ 0x51C0A15)
	periods := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		25 * time.Millisecond, 40 * time.Millisecond, 50 * time.Millisecond,
	}
	signals := make([]signal.Signal, opts.Signals)
	for i := range signals {
		period := periods[rng.Intn(len(periods))]
		bits := 8 * (1 + rng.Intn(16)) // 8..128 bits
		signals[i] = signal.Signal{
			Name:     fmt.Sprintf("sig-%04d", i),
			Node:     i % opts.Nodes,
			Kind:     signal.Periodic,
			Period:   period,
			Offset:   0,
			Deadline: period,
			Bits:     bits,
		}
	}
	msgs, err := signal.Pack(signals, signal.PackOptions{
		MaxPayloadBits: opts.MaxPayloadBits,
		FirstID:        opts.FirstID,
	})
	if err != nil {
		return signal.Set{}, err
	}
	set := signal.Set{
		Name:     fmt.Sprintf("signals-%d", opts.Signals),
		Messages: msgs,
	}
	if err := set.Validate(); err != nil {
		return signal.Set{}, err
	}
	return set, nil
}
