// Package workload provides the message sets used in the paper's
// evaluation (Section IV-A):
//
//   - the Brake-By-Wire application (Table II, 20 periodic messages),
//   - the Adaptive Cruise Controller application (Table III, 20 periodic
//     messages),
//   - synthetic test cases with periods drawn from 5–50 ms and deadlines
//     from 1–20 ms,
//   - the SAE-derived aperiodic message set: 30 aperiodic messages with a
//     50 ms period and deadline, frame IDs 81–110 (80-slot configurations)
//     or 121–150 (120-slot configurations).
package workload

import (
	"fmt"
	"time"

	"github.com/flexray-go/coefficient/internal/fault"
	"github.com/flexray-go/coefficient/internal/signal"
)

// NodeCount is the number of FlexRay nodes in the paper's testbed; messages
// are distributed uniformly over them.
const NodeCount = 10

// bbwRow mirrors one row of Table II / Table III.
type bbwRow struct {
	offsetUs int // offset in microseconds (table gives fractions of ms)
	periodMs int
	deadMs   int
	bits     int
}

// Table II: Brake-by-wire message parameters.
var bbwTable = []bbwRow{
	{280, 8, 8, 1292},
	{760, 8, 8, 285},
	{580, 1, 1, 1574},
	{720, 1, 1, 552},
	{870, 1, 1, 348},
	{920, 1, 1, 469},
	{340, 1, 1, 1184},
	{280, 8, 8, 875},
	{750, 8, 8, 759},
	{520, 8, 8, 932},
	{950, 8, 8, 1261},
	{620, 8, 8, 633},
	{720, 8, 8, 452},
	{850, 8, 8, 342},
	{910, 8, 8, 856},
	{470, 8, 8, 1578},
	{560, 1, 1, 1742},
	{580, 1, 1, 553},
	{920, 1, 1, 1172},
	{680, 1, 1, 878},
}

// Table III: Adaptive cruise controller message parameters.
var accTable = []bbwRow{
	{420, 16, 16, 1024},
	{620, 16, 16, 1024},
	{580, 16, 16, 1024},
	{250, 16, 16, 1024},
	{390, 16, 16, 1024},
	{480, 24, 24, 1024},
	{220, 24, 24, 1024},
	{510, 24, 24, 1024},
	{320, 24, 24, 1024},
	{470, 24, 24, 1024},
	{650, 24, 24, 1024},
	{420, 24, 24, 1024},
	{310, 32, 32, 1280},
	{560, 32, 32, 1280},
	{480, 32, 32, 1280},
	{320, 32, 32, 256},
	{660, 32, 32, 256},
	{420, 32, 32, 256},
	{260, 32, 32, 1280},
	{350, 32, 32, 256},
}

// BBW returns the Brake-By-Wire message set (paper Table II): 20 periodic
// messages with frame IDs 1..20, distributed round-robin over the 10 nodes.
func BBW() signal.Set {
	return tableSet("BBW", bbwTable)
}

// ACC returns the Adaptive Cruise Controller message set (paper Table III):
// 20 periodic messages with frame IDs 1..20.
func ACC() signal.Set {
	return tableSet("ACC", accTable)
}

func tableSet(name string, rows []bbwRow) signal.Set {
	msgs := make([]signal.Message, len(rows))
	for i, r := range rows {
		msgs[i] = signal.Message{
			ID:       i + 1,
			Name:     fmt.Sprintf("%s-%02d", name, i+1),
			Node:     i % NodeCount,
			Kind:     signal.Periodic,
			Period:   time.Duration(r.periodMs) * time.Millisecond,
			Offset:   time.Duration(r.offsetUs) * time.Microsecond,
			Deadline: time.Duration(r.deadMs) * time.Millisecond,
			Bits:     r.bits,
		}
	}
	return signal.Set{Name: name, Messages: msgs}
}

// SyntheticOptions parameterizes the synthetic static workload generator.
type SyntheticOptions struct {
	// Messages is the number of periodic messages to generate.
	Messages int
	// Seed makes generation reproducible.
	Seed uint64
	// FirstID is the frame ID of the first message (defaults to 1).
	FirstID int
	// Periods lists the candidate periods.  Defaults to harmonic-friendly
	// values within the paper's 5–50 ms range so hyperperiods stay small.
	Periods []time.Duration
	// MinDeadline and MaxDeadline bound the drawn deadlines (paper: 1–20
	// ms); a deadline never exceeds its message's period.
	MinDeadline, MaxDeadline time.Duration
	// MinBits and MaxBits bound the message sizes (defaults 256..1600, in
	// line with the BBW sizes).
	MinBits, MaxBits int
}

func (o *SyntheticOptions) fill() {
	if o.FirstID <= 0 {
		o.FirstID = 1
	}
	if len(o.Periods) == 0 {
		o.Periods = []time.Duration{
			5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
			25 * time.Millisecond, 40 * time.Millisecond, 50 * time.Millisecond,
		}
	}
	if o.MinDeadline <= 0 {
		o.MinDeadline = time.Millisecond
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 20 * time.Millisecond
	}
	if o.MinBits <= 0 {
		o.MinBits = 256
	}
	if o.MaxBits <= 0 {
		o.MaxBits = 1600
	}
}

// Synthetic generates a reproducible random periodic message set following
// the paper's synthetic test cases: random periods from the 5–50 ms range
// and deadlines from 1–20 ms (clamped to the period).
func Synthetic(opts SyntheticOptions) (signal.Set, error) {
	if opts.Messages <= 0 {
		return signal.Set{}, fmt.Errorf("workload: synthetic message count %d", opts.Messages)
	}
	opts.fill()
	rng := fault.NewRNG(opts.Seed)
	msgs := make([]signal.Message, opts.Messages)
	for i := range msgs {
		period := opts.Periods[rng.Intn(len(opts.Periods))]
		dlRange := int(opts.MaxDeadline - opts.MinDeadline)
		deadline := opts.MinDeadline
		if dlRange > 0 {
			deadline += time.Duration(rng.Intn(dlRange + 1))
		}
		if deadline > period {
			deadline = period
		}
		offset := time.Duration(rng.Intn(int(deadline)))
		bits := opts.MinBits
		if opts.MaxBits > opts.MinBits {
			bits += rng.Intn(opts.MaxBits - opts.MinBits + 1)
		}
		msgs[i] = signal.Message{
			ID:       opts.FirstID + i,
			Name:     fmt.Sprintf("syn-%03d", opts.FirstID+i),
			Node:     i % NodeCount,
			Kind:     signal.Periodic,
			Period:   period,
			Offset:   offset,
			Deadline: deadline,
			Bits:     bits,
		}
	}
	set := signal.Set{Name: fmt.Sprintf("synthetic-%d", opts.Messages), Messages: msgs}
	if err := set.Validate(); err != nil {
		return signal.Set{}, err
	}
	return set, nil
}

// SAEAperiodicOptions parameterizes the SAE-derived dynamic message set.
type SAEAperiodicOptions struct {
	// FirstID is the first dynamic frame ID: 81 for 80-slot
	// configurations, 121 for 120-slot configurations (paper Section
	// IV-A).
	FirstID int
	// Count is the number of aperiodic messages (paper: 30).
	Count int
	// Seed makes the size draw reproducible.
	Seed uint64
	// MinBits and MaxBits bound message sizes (defaults 64..512: SAE
	// class C sporadic messages are short).
	MinBits, MaxBits int
}

// SAEAperiodic returns the paper's dynamic-segment workload: Count aperiodic
// messages with consecutive frame IDs from FirstID, a 50 ms period (used as
// the mean inter-arrival time) and a 50 ms deadline, uniformly distributed
// over the 10 nodes.
func SAEAperiodic(opts SAEAperiodicOptions) (signal.Set, error) {
	if opts.Count <= 0 {
		opts.Count = 30
	}
	if opts.FirstID <= 0 {
		opts.FirstID = 81
	}
	if opts.MinBits <= 0 {
		opts.MinBits = 64
	}
	if opts.MaxBits <= 0 {
		opts.MaxBits = 512
	}
	rng := fault.NewRNG(opts.Seed)
	msgs := make([]signal.Message, opts.Count)
	for i := range msgs {
		bits := opts.MinBits
		if opts.MaxBits > opts.MinBits {
			bits += rng.Intn(opts.MaxBits - opts.MinBits + 1)
		}
		msgs[i] = signal.Message{
			ID:       opts.FirstID + i,
			Name:     fmt.Sprintf("sae-%03d", opts.FirstID+i),
			Node:     i % NodeCount,
			Kind:     signal.Aperiodic,
			Period:   50 * time.Millisecond, // mean inter-arrival time
			Deadline: 50 * time.Millisecond,
			Bits:     bits,
			Priority: i + 1,
		}
	}
	set := signal.Set{Name: fmt.Sprintf("sae-%d", opts.FirstID), Messages: msgs}
	if err := set.Validate(); err != nil {
		return signal.Set{}, err
	}
	return set, nil
}

// Merge combines several message sets into one named workload, failing on
// frame ID collisions.
func Merge(name string, sets ...signal.Set) (signal.Set, error) {
	var msgs []signal.Message
	for _, s := range sets {
		msgs = append(msgs, s.Messages...)
	}
	out := signal.Set{Name: name, Messages: msgs}
	if err := out.Validate(); err != nil {
		return signal.Set{}, err
	}
	return out, nil
}
