// Package scenario defines deterministic, scriptable fault timelines for
// the simulator: per-channel BER steps and ramps, Gilbert–Elliott burst
// episodes, channel blackouts, and node crash/recovery events.  A scenario
// is parsed from a small JSON DSL, validated, and compiled against a
// cluster timing configuration into a macrotick-aligned Runtime the engine
// consults every cycle and transmission.  Identical seed + scenario yields
// identical traces.
//
// The DSL (all times are Go duration strings like "20ms", or integer
// nanoseconds):
//
//	{
//	  "name": "ber-step-plus-blackout",
//	  "channels": {
//	    "A": {
//	      "baseBER": 1e-7,
//	      "steps":  [{"start": "40ms", "ber": 1e-4}],
//	      "ramps":  [{"start": "10ms", "end": "20ms", "from": 1e-7, "to": 1e-5}],
//	      "bursts": [{"start": "25ms", "end": "30ms",
//	                  "berGood": 1e-7, "berBad": 1e-3,
//	                  "pGoodToBad": 0.2, "pBadToGood": 0.4}],
//	      "blackouts": [{"start": "60ms", "end": "80ms"}]
//	    },
//	    "B": {"baseBER": 1e-7}
//	  },
//	  "nodes": [{"node": 2, "failAt": "20ms", "recoverAt": "50ms"}],
//	  "timing": {
//	    "driftSteps": [{"node": 2, "at": "20ms", "ppm": 1500}],
//	    "syncLoss":   [{"node": 0, "start": "30ms", "end": "60ms"}],
//	    "babble":     [{"node": 1, "start": "40ms", "end": "70ms"}]
//	  }
//	}
//
// A step without "end" holds until the end of the run; a node event
// without "recoverAt" is a permanent crash; a timing window without "end"
// holds until the end of the run.  Timing faults require the run to model
// local clocks (sim.Options.Timing): a drift step re-rates one node's
// oscillator from "at" onwards, sync-loss windows suppress the node's sync
// frames (its deviations disappear from everyone's FTM input), and babble
// windows turn the node into a babbling idiot that drives every static
// slot — contained by bus guardians when enabled.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"time"
)

// Errors returned by the parser and validator.
var (
	// ErrParse is returned for malformed scenario documents.
	ErrParse = errors.New("scenario: parse error")
	// ErrInvalid is returned for well-formed documents that violate the
	// DSL's semantic rules (negative times, overlapping windows, ...).
	ErrInvalid = errors.New("scenario: invalid")
)

// Duration is a time.Duration that unmarshals from either a Go duration
// string ("20ms") or an integer nanosecond count.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// MarshalJSON implements json.Marshaler (duration-string form).
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Std returns the value as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Scenario is one parsed fault timeline.
type Scenario struct {
	// Name labels the scenario in reports and traces.
	Name string `json:"name,omitempty"`
	// Channels maps "A"/"B" to the channel's fault timeline.  A channel
	// with an entry gets a scenario-driven injector; absent channels keep
	// whatever injector the run options provide.
	Channels map[string]*Channel `json:"channels,omitempty"`
	// Nodes lists crash/recovery events.
	Nodes []NodeEvent `json:"nodes,omitempty"`
	// Timing lists node-level timing-fault events.
	Timing *TimingFaults `json:"timing,omitempty"`
}

// TimingFaults scripts node-level timing misbehavior.
type TimingFaults struct {
	// DriftSteps re-rate a node's oscillator at a point in time.
	DriftSteps []DriftStep `json:"driftSteps,omitempty"`
	// SyncLoss windows suppress a node's sync frames.
	SyncLoss []NodeWindow `json:"syncLoss,omitempty"`
	// Babble windows turn a node into a babbling idiot.
	Babble []NodeWindow `json:"babble,omitempty"`
}

// DriftStep sets a node's oscillator error to PPM (parts per million,
// absolute — not a delta) from At onwards.
type DriftStep struct {
	Node int      `json:"node"`
	At   Duration `json:"at"`
	PPM  float64  `json:"ppm"`
}

// NodeWindow is a per-node half-open time window [Start, End).  A zero End
// holds the window until the end of the run.
type NodeWindow struct {
	Node  int      `json:"node"`
	Start Duration `json:"start"`
	End   Duration `json:"end,omitempty"`
}

// Channel is the fault timeline of one channel.
type Channel struct {
	// BaseBER is the bit error rate outside every step/ramp/burst window.
	BaseBER float64 `json:"baseBER,omitempty"`
	// Steps switch the BER to a fixed value within their window.
	Steps []Step `json:"steps,omitempty"`
	// Ramps sweep the BER linearly across their window.
	Ramps []Ramp `json:"ramps,omitempty"`
	// Bursts run a Gilbert–Elliott two-state model within their window.
	Bursts []Burst `json:"bursts,omitempty"`
	// Blackouts silence the channel entirely within their window: every
	// transmission on it is lost.
	Blackouts []Window `json:"blackouts,omitempty"`
}

// Step is a BER step window.  A zero End holds the step until the end of
// the run.
type Step struct {
	Start Duration `json:"start"`
	End   Duration `json:"end,omitempty"`
	BER   float64  `json:"ber"`
}

// Ramp sweeps the BER linearly from From at Start to To at End.
type Ramp struct {
	Start Duration `json:"start"`
	End   Duration `json:"end"`
	From  float64  `json:"from"`
	To    float64  `json:"to"`
}

// Burst is one Gilbert–Elliott episode.
type Burst struct {
	Start      Duration `json:"start"`
	End        Duration `json:"end"`
	BERGood    float64  `json:"berGood"`
	BERBad     float64  `json:"berBad"`
	PGoodToBad float64  `json:"pGoodToBad"`
	PBadToGood float64  `json:"pBadToGood"`
}

// Window is a half-open time window [Start, End).
type Window struct {
	Start Duration `json:"start"`
	End   Duration `json:"end"`
}

// NodeEvent is one crash (and optional recovery) of a node.  A zero
// RecoverAt means the crash is permanent.
type NodeEvent struct {
	Node      int      `json:"node"`
	FailAt    Duration `json:"failAt"`
	RecoverAt Duration `json:"recoverAt,omitempty"`
}

// Parse decodes and validates a scenario document.  Unknown fields are
// rejected so typos in scenario files surface as errors instead of being
// silently ignored.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	// Reject trailing garbage after the document.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after scenario document", ErrParse)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// span is a validated half-open window in nanoseconds; end < 0 means open.
type span struct {
	start, end time.Duration
}

func (s span) openEnded() bool { return s.end < 0 }

func (s span) overlaps(o span) bool {
	if s.openEnded() {
		return o.openEnded() || o.end > s.start
	}
	if o.openEnded() {
		return s.end > o.start
	}
	return s.start < o.end && o.start < s.end
}

func checkSpan(what string, start, end Duration, open bool) (span, error) {
	if start < 0 {
		return span{}, fmt.Errorf("%w: %s start %v negative", ErrInvalid, what, start.Std())
	}
	if end == 0 && open {
		return span{start: start.Std(), end: -1}, nil
	}
	if end <= start {
		return span{}, fmt.Errorf("%w: %s window [%v, %v) empty", ErrInvalid, what, start.Std(), end.Std())
	}
	return span{start: start.Std(), end: end.Std()}, nil
}

func checkBER(what string, ber float64) error {
	if ber < 0 || ber >= 1 {
		return fmt.Errorf("%w: %s BER %g outside [0, 1)", ErrInvalid, what, ber)
	}
	return nil
}

func checkProb(what string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("%w: %s probability %g outside [0, 1]", ErrInvalid, what, p)
	}
	return nil
}

func checkNoOverlap(what string, spans []span) error {
	sorted := append([]span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].start < sorted[j].start })
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].overlaps(sorted[i]) {
			return fmt.Errorf("%w: overlapping %s windows at %v and %v",
				ErrInvalid, what, sorted[i-1].start, sorted[i].start)
		}
	}
	return nil
}

// Validate checks the scenario's semantic rules: channel keys are "A" or
// "B"; all times are non-negative; every bounded window is non-empty; BER
// windows (steps and ramps) of one channel do not overlap each other, nor
// do blackouts or bursts; node events are ordered fail-then-recover and do
// not overlap per node.
// Iteration follows sorted key order so that, with several invalid
// entries, the same one is reported every run — map order would make the
// returned error nondeterministic.
func (s *Scenario) Validate() error {
	for _, key := range sortedChannelKeys(s.Channels) {
		ch := s.Channels[key]
		if key != "A" && key != "B" {
			return fmt.Errorf("%w: unknown channel %q (want \"A\" or \"B\")", ErrInvalid, key)
		}
		if ch == nil {
			return fmt.Errorf("%w: channel %q is null", ErrInvalid, key)
		}
		if err := ch.validate(key); err != nil {
			return err
		}
	}
	if err := s.validateNodes(); err != nil {
		return err
	}
	return s.validateTiming()
}

func (s *Scenario) validateTiming() error {
	if s.Timing == nil {
		return nil
	}
	for _, st := range s.Timing.DriftSteps {
		if st.Node < 0 {
			return fmt.Errorf("%w: drift step node %d negative", ErrInvalid, st.Node)
		}
		if st.At < 0 {
			return fmt.Errorf("%w: drift step at %v negative", ErrInvalid, st.At.Std())
		}
		if math.IsNaN(st.PPM) || math.IsInf(st.PPM, 0) {
			return fmt.Errorf("%w: drift step ppm %v not finite", ErrInvalid, st.PPM)
		}
	}
	for _, group := range []struct {
		what    string
		windows []NodeWindow
	}{
		{"sync-loss", s.Timing.SyncLoss},
		{"babble", s.Timing.Babble},
	} {
		perNode := make(map[int][]span)
		for _, w := range group.windows {
			if w.Node < 0 {
				return fmt.Errorf("%w: %s node %d negative", ErrInvalid, group.what, w.Node)
			}
			sp, err := checkSpan(fmt.Sprintf("node %d %s", w.Node, group.what), w.Start, w.End, true)
			if err != nil {
				return err
			}
			perNode[w.Node] = append(perNode[w.Node], sp)
		}
		for _, id := range sortedNodeKeys(perNode) {
			if err := checkNoOverlap(fmt.Sprintf("node %d %s", id, group.what), perNode[id]); err != nil {
				return err
			}
		}
	}
	return nil
}

func (ch *Channel) validate(key string) error {
	if err := checkBER("channel "+key+" base", ch.BaseBER); err != nil {
		return err
	}
	var berSpans []span
	for _, st := range ch.Steps {
		sp, err := checkSpan("channel "+key+" step", st.Start, st.End, true)
		if err != nil {
			return err
		}
		if err := checkBER("channel "+key+" step", st.BER); err != nil {
			return err
		}
		berSpans = append(berSpans, sp)
	}
	for _, rp := range ch.Ramps {
		sp, err := checkSpan("channel "+key+" ramp", rp.Start, rp.End, false)
		if err != nil {
			return err
		}
		for _, ber := range []float64{rp.From, rp.To} {
			if err := checkBER("channel "+key+" ramp", ber); err != nil {
				return err
			}
		}
		berSpans = append(berSpans, sp)
	}
	if err := checkNoOverlap("channel "+key+" BER", berSpans); err != nil {
		return err
	}
	var burstSpans []span
	for _, b := range ch.Bursts {
		sp, err := checkSpan("channel "+key+" burst", b.Start, b.End, false)
		if err != nil {
			return err
		}
		for _, ber := range []float64{b.BERGood, b.BERBad} {
			if err := checkBER("channel "+key+" burst", ber); err != nil {
				return err
			}
		}
		for _, p := range []float64{b.PGoodToBad, b.PBadToGood} {
			if err := checkProb("channel "+key+" burst", p); err != nil {
				return err
			}
		}
		burstSpans = append(burstSpans, sp)
	}
	if err := checkNoOverlap("channel "+key+" burst", burstSpans); err != nil {
		return err
	}
	var blackSpans []span
	for _, w := range ch.Blackouts {
		sp, err := checkSpan("channel "+key+" blackout", w.Start, w.End, false)
		if err != nil {
			return err
		}
		blackSpans = append(blackSpans, sp)
	}
	return checkNoOverlap("channel "+key+" blackout", blackSpans)
}

func (s *Scenario) validateNodes() error {
	perNode := make(map[int][]span)
	for _, ev := range s.Nodes {
		if ev.Node < 0 {
			return fmt.Errorf("%w: node %d negative", ErrInvalid, ev.Node)
		}
		if ev.FailAt < 0 {
			return fmt.Errorf("%w: node %d failAt %v negative", ErrInvalid, ev.Node, ev.FailAt.Std())
		}
		sp, err := checkSpan(fmt.Sprintf("node %d down", ev.Node), ev.FailAt, ev.RecoverAt, true)
		if err != nil {
			return err
		}
		perNode[ev.Node] = append(perNode[ev.Node], sp)
	}
	for _, id := range sortedNodeKeys(perNode) {
		if err := checkNoOverlap(fmt.Sprintf("node %d down", id), perNode[id]); err != nil {
			return err
		}
	}
	return nil
}

// sortedChannelKeys returns the channel map's keys in ascending order,
// for deterministic validation and compilation order.
func sortedChannelKeys(m map[string]*Channel) []string {
	keys := make([]string, 0, len(m))
	for key := range m {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// sortedNodeKeys returns the per-node map's keys in ascending order.
func sortedNodeKeys[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
