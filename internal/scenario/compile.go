package scenario

import (
	"fmt"
	"sort"

	"github.com/flexray-go/coefficient/internal/fault"
	"github.com/flexray-go/coefficient/internal/frame"
	"github.com/flexray-go/coefficient/internal/timebase"
)

// Per-channel seed tweaks so the two channels draw independent fault
// streams from one run seed.
const (
	seedChannelA uint64 = 0xA11CE5CE_4A12_0001
	seedChannelB uint64 = 0xB0B5_1ED0_4A12_0002
)

// Runtime is a scenario compiled against a cluster timing configuration:
// every window is converted to macroticks, and each scripted channel gets
// a deterministic time-varying injector derived from the run seed.
type Runtime struct {
	name      string
	injectors map[frame.Channel]*fault.Profile
	blackouts map[frame.Channel][]mtSpan
	nodes     map[int][]mtSpan
	// driftSteps maps node IDs to oscillator re-rates sorted by time.
	driftSteps map[int][]driftAt
	// syncLoss and babble map node IDs to sorted fault windows.
	syncLoss map[int][]mtSpan
	babble   map[int][]mtSpan
}

// driftAt is one compiled oscillator re-rate.
type driftAt struct {
	at  timebase.Macrotick
	ppm float64
}

// mtSpan is a half-open macrotick window [start, end).
type mtSpan struct {
	start, end timebase.Macrotick
}

func (s mtSpan) contains(t timebase.Macrotick) bool {
	return t >= s.start && t < s.end
}

// Compile converts the scenario to the run's macrotick clock and builds
// the per-channel injectors.  The same seed and scenario always produce
// the same Runtime behaviour.
func (s *Scenario) Compile(cfg timebase.Config, seed uint64) (*Runtime, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		name:       s.Name,
		injectors:  make(map[frame.Channel]*fault.Profile),
		blackouts:  make(map[frame.Channel][]mtSpan),
		nodes:      make(map[int][]mtSpan),
		driftSteps: make(map[int][]driftAt),
		syncLoss:   make(map[int][]mtSpan),
		babble:     make(map[int][]mtSpan),
	}
	// Sorted key order keeps compilation deterministic; the per-channel
	// seed is derived from the key, so the draw streams do not depend on
	// the order either way, but error reporting does.
	for _, key := range sortedChannelKeys(s.Channels) {
		ch := s.Channels[key]
		fc := frame.ChannelA
		chSeed := seed ^ seedChannelA
		if key == "B" {
			fc = frame.ChannelB
			chSeed = seed ^ seedChannelB
		}
		inj, err := compileChannel(ch, cfg, chSeed)
		if err != nil {
			return nil, fmt.Errorf("channel %s: %w", key, err)
		}
		rt.injectors[fc] = inj
		for _, w := range ch.Blackouts {
			rt.blackouts[fc] = append(rt.blackouts[fc], mtSpan{
				start: cfg.FromDuration(w.Start.Std()),
				end:   cfg.FromDuration(w.End.Std()),
			})
		}
		sortSpans(rt.blackouts[fc])
	}
	for _, ev := range s.Nodes {
		end := fault.OpenEnd
		if ev.RecoverAt > 0 {
			end = cfg.FromDuration(ev.RecoverAt.Std())
		}
		rt.nodes[ev.Node] = append(rt.nodes[ev.Node], mtSpan{
			start: cfg.FromDuration(ev.FailAt.Std()),
			end:   end,
		})
	}
	sortBuckets(rt.nodes, func(a, b mtSpan) bool { return a.start < b.start })
	if s.Timing != nil {
		for _, st := range s.Timing.DriftSteps {
			rt.driftSteps[st.Node] = append(rt.driftSteps[st.Node], driftAt{
				at:  cfg.FromDuration(st.At.Std()),
				ppm: st.PPM,
			})
		}
		sortBuckets(rt.driftSteps, func(a, b driftAt) bool { return a.at < b.at })
		rt.syncLoss = compileNodeWindows(s.Timing.SyncLoss, cfg)
		rt.babble = compileNodeWindows(s.Timing.Babble, cfg)
	}
	return rt, nil
}

// compileNodeWindows converts per-node fault windows to macroticks.
func compileNodeWindows(windows []NodeWindow, cfg timebase.Config) map[int][]mtSpan {
	out := make(map[int][]mtSpan, len(windows))
	for _, w := range windows {
		end := fault.OpenEnd
		if w.End > 0 {
			end = cfg.FromDuration(w.End.Std())
		}
		out[w.Node] = append(out[w.Node], mtSpan{
			start: cfg.FromDuration(w.Start.Std()),
			end:   end,
		})
	}
	sortBuckets(out, func(a, b mtSpan) bool { return a.start < b.start })
	return out
}

func sortSpans(spans []mtSpan) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
}

// sortBuckets sorts every bucket of a per-node map in place.  Visiting
// order is irrelevant: each iteration sorts only its own key's slice,
// and each slice's content is independent of the others.
func sortBuckets[V any](m map[int][]V, less func(a, b V) bool) {
	//lint:allow mapiter each iteration sorts only its own bucket; no cross-key state
	for id := range m {
		bucket := m[id]
		sort.Slice(bucket, func(i, j int) bool { return less(bucket[i], bucket[j]) })
	}
}

func compileChannel(ch *Channel, cfg timebase.Config, seed uint64) (*fault.Profile, error) {
	// A window that validates in nanoseconds can still collapse to nothing
	// on the coarser macrotick clock (e.g. [1ns, 2ns) with 1µs macroticks);
	// such windows are unobservable by the engine and are dropped rather
	// than rejected.
	var phases []fault.BERPhase
	for _, st := range ch.Steps {
		end := fault.OpenEnd
		if st.End > 0 {
			end = cfg.FromDuration(st.End.Std())
		}
		start := cfg.FromDuration(st.Start.Std())
		if end <= start {
			continue
		}
		phases = append(phases, fault.BERPhase{
			Start: start,
			End:   end,
			From:  st.BER,
			To:    st.BER,
		})
	}
	for _, rp := range ch.Ramps {
		start, end := cfg.FromDuration(rp.Start.Std()), cfg.FromDuration(rp.End.Std())
		if end <= start {
			continue
		}
		phases = append(phases, fault.BERPhase{
			Start: start,
			End:   end,
			From:  rp.From,
			To:    rp.To,
		})
	}
	var bursts []fault.BurstWindow
	for _, b := range ch.Bursts {
		start, end := cfg.FromDuration(b.Start.Std()), cfg.FromDuration(b.End.Std())
		if end <= start {
			continue
		}
		bursts = append(bursts, fault.BurstWindow{
			Start: start,
			End:   end,
			GE: fault.GilbertElliottConfig{
				BERGood:    b.BERGood,
				BERBad:     b.BERBad,
				PGoodToBad: b.PGoodToBad,
				PBadToGood: b.PBadToGood,
			},
		})
	}
	return fault.NewProfile(ch.BaseBER, phases, bursts, seed)
}

// Name returns the scenario label.
func (r *Runtime) Name() string { return r.name }

// Injector returns the scripted injector for the channel, or nil when the
// scenario does not model the channel's faults.
func (r *Runtime) Injector(ch frame.Channel) fault.Injector {
	inj, ok := r.injectors[ch]
	if !ok {
		return nil
	}
	return inj
}

// BlackedOut reports whether the channel is inside a blackout window at t.
func (r *Runtime) BlackedOut(ch frame.Channel, t timebase.Macrotick) bool {
	for _, sp := range r.blackouts[ch] {
		if t < sp.start {
			return false
		}
		if sp.contains(t) {
			return true
		}
	}
	return false
}

// NodeDown reports whether the node is inside a scripted down interval at t.
func (r *Runtime) NodeDown(id int, t timebase.Macrotick) bool {
	for _, sp := range r.nodes[id] {
		if t < sp.start {
			return false
		}
		if sp.contains(t) {
			return true
		}
	}
	return false
}

// DriftPPM returns the node's scripted oscillator error at t and true when
// a drift step has taken effect; false means the node keeps its default
// drift.
func (r *Runtime) DriftPPM(id int, t timebase.Macrotick) (float64, bool) {
	ppm, ok := 0.0, false
	for _, st := range r.driftSteps[id] {
		if st.at > t {
			break
		}
		ppm, ok = st.ppm, true
	}
	return ppm, ok
}

// SyncSuppressed reports whether the node's sync frames are suppressed at t.
func (r *Runtime) SyncSuppressed(id int, t timebase.Macrotick) bool {
	return inSpans(r.syncLoss[id], t)
}

// Babbling reports whether the node is a scripted babbling idiot at t.
func (r *Runtime) Babbling(id int, t timebase.Macrotick) bool {
	return inSpans(r.babble[id], t)
}

// Babblers returns the nodes with scripted babble windows, sorted.
func (r *Runtime) Babblers() []int {
	ids := make([]int, 0, len(r.babble))
	for id := range r.babble {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// HasTimingFaults reports whether the scenario scripts any node-level
// timing fault; the engine uses it to switch on local clocks even when the
// run options leave them off.
func (r *Runtime) HasTimingFaults() bool {
	return len(r.driftSteps) > 0 || len(r.syncLoss) > 0 || len(r.babble) > 0
}

func inSpans(spans []mtSpan, t timebase.Macrotick) bool {
	for _, sp := range spans {
		if t < sp.start {
			return false
		}
		if sp.contains(t) {
			return true
		}
	}
	return false
}

// NodeIDs returns the nodes with scripted crash/recovery events, sorted.
func (r *Runtime) NodeIDs() []int {
	ids := make([]int, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
