package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/flexray-go/coefficient/internal/timebase"
)

const timingDoc = `{
  "name": "timing-faults",
  "channels": {"A": {"baseBER": 1e-7}},
  "timing": {
    "driftSteps": [
      {"node": 2, "at": "20ms", "ppm": 1500},
      {"node": 2, "at": "40ms", "ppm": 100}
    ],
    "syncLoss": [{"node": 0, "start": "30ms", "end": "60ms"}],
    "babble":   [{"node": 1, "start": "40ms"}]
  }
}`

func timingConfig() timebase.Config {
	return timebase.Config{
		MacrotickDuration: time.Microsecond,
		MacroPerCycle:     1000,
		StaticSlots:       10,
		StaticSlotLen:     50,
		Minislots:         40,
		MinislotLen:       5,
	}
}

func TestParseTimingFaults(t *testing.T) {
	s, err := Parse([]byte(timingDoc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Timing == nil || len(s.Timing.DriftSteps) != 2 ||
		len(s.Timing.SyncLoss) != 1 || len(s.Timing.Babble) != 1 {
		t.Fatalf("timing section parsed wrong: %+v", s.Timing)
	}
}

func TestCompileTimingFaults(t *testing.T) {
	s, err := Parse([]byte(timingDoc))
	if err != nil {
		t.Fatal(err)
	}
	cfg := timingConfig()
	rt, err := s.Compile(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.HasTimingFaults() {
		t.Fatal("HasTimingFaults must be true")
	}

	// Drift steps: absolute override, latest step wins.
	ms := func(d time.Duration) timebase.Macrotick { return cfg.FromDuration(d) }
	if _, ok := rt.DriftPPM(2, ms(10*time.Millisecond)); ok {
		t.Fatal("no drift step before 20ms")
	}
	if ppm, ok := rt.DriftPPM(2, ms(25*time.Millisecond)); !ok || ppm != 1500 {
		t.Fatalf("drift at 25ms = %v,%v, want 1500,true", ppm, ok)
	}
	if ppm, ok := rt.DriftPPM(2, ms(50*time.Millisecond)); !ok || ppm != 100 {
		t.Fatalf("drift at 50ms = %v,%v, want 100,true", ppm, ok)
	}
	if _, ok := rt.DriftPPM(3, ms(time.Hour)); ok {
		t.Fatal("node without drift steps must report none")
	}

	// Sync-loss window [30ms, 60ms).
	if rt.SyncSuppressed(0, ms(29*time.Millisecond)) {
		t.Fatal("sync suppressed before window")
	}
	if !rt.SyncSuppressed(0, ms(45*time.Millisecond)) {
		t.Fatal("sync not suppressed inside window")
	}
	if rt.SyncSuppressed(0, ms(60*time.Millisecond)) {
		t.Fatal("sync suppressed at half-open end")
	}

	// Babble window open-ended from 40ms.
	if rt.Babbling(1, ms(39*time.Millisecond)) {
		t.Fatal("babbling before window")
	}
	if !rt.Babbling(1, ms(10*time.Hour)) {
		t.Fatal("open-ended babble must hold forever")
	}
	if got := rt.Babblers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Babblers = %v, want [1]", got)
	}
}

func TestCompileNoTimingFaults(t *testing.T) {
	s, err := Parse([]byte(`{"channels": {"A": {"baseBER": 1e-7}}}`))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := s.Compile(timingConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.HasTimingFaults() {
		t.Fatal("HasTimingFaults must be false without a timing section")
	}
}

func TestValidateTimingRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			"negative drift node",
			`{"timing": {"driftSteps": [{"node": -1, "at": "1ms", "ppm": 100}]}}`,
			"negative",
		},
		{
			"non-finite ppm",
			`{"timing": {"driftSteps": [{"node": 0, "at": "1ms", "ppm": 1e999}]}}`,
			"",
		},
		{
			"overlapping babble windows",
			`{"timing": {"babble": [
				{"node": 1, "start": "10ms", "end": "30ms"},
				{"node": 1, "start": "20ms", "end": "40ms"}]}}`,
			"overlap",
		},
		{
			"empty sync-loss window",
			`{"timing": {"syncLoss": [{"node": 0, "start": "10ms", "end": "10ms"}]}}`,
			"",
		},
		{
			"unknown timing field",
			`{"timing": {"babbleX": []}}`,
			"",
		},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.doc))
		if err == nil {
			t.Fatalf("%s: want error", tc.name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestTimingWindowsOnDifferentNodesMayOverlap(t *testing.T) {
	doc := `{"timing": {"babble": [
		{"node": 1, "start": "10ms", "end": "30ms"},
		{"node": 2, "start": "20ms", "end": "40ms"}]}}`
	if _, err := Parse([]byte(doc)); err != nil {
		t.Fatalf("different-node overlap must be legal: %v", err)
	}
}
