package scenario

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzParse checks the DSL parser's contract on arbitrary input: it must
// never panic, and whatever it accepts must validate, compile, and survive
// a marshal/re-parse round trip.
func FuzzParse(f *testing.F) {
	f.Add([]byte(fullDoc))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name": "x"}`))
	f.Add([]byte(`{"channels": {"A": {"baseBER": 1e-7}}}`))
	f.Add([]byte(`{"channels": {"A": {"steps": [{"start": "10ms", "ber": 1e-4}]}}}`))
	f.Add([]byte(`{"channels": {"A": {"steps": [{"start": -1, "ber": 2}]}}}`))
	f.Add([]byte(`{"channels": {"A": {"blackouts": [{"start": "5ms", "end": "1ms"}]}}}`))
	f.Add([]byte(`{"nodes": [{"node": 2, "failAt": "20ms", "recoverAt": "10ms"}]}`))
	f.Add([]byte(`{"nodes": [{"node": 2, "failAt": 9223372036854775807}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"channels": {"A": {"baseBER": 1e308}}} trailing`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if s != nil {
				t.Fatal("Parse returned both a scenario and an error")
			}
			return
		}
		// Accepted documents are semantically valid by contract...
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted scenario fails Validate: %v", err)
		}
		// ...compile cleanly against a real timing configuration...
		if _, err := s.Compile(testConfig(), 42); err != nil {
			t.Fatalf("accepted scenario fails Compile: %v", err)
		}
		// ...and survive a round trip through their canonical encoding.
		doc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("Marshal of accepted scenario: %v", err)
		}
		if _, err := Parse(doc); err != nil {
			t.Fatalf("re-Parse of accepted scenario: %v\ndoc: %s", err, doc)
		}
	})
}

// Durations must reject junk without panicking, independent of Parse.
func FuzzDuration(f *testing.F) {
	f.Add([]byte(`"20ms"`))
	f.Add([]byte(`5000000`))
	f.Add([]byte(`"not-a-duration"`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Duration
		if err := d.UnmarshalJSON(data); err != nil {
			return
		}
		if _, err := json.Marshal(d); err != nil {
			t.Fatalf("Marshal of accepted duration %v: %v", time.Duration(d), err)
		}
	})
}
