package scenario

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// Regression tests for the nondeterministic-validation bug surfaced by
// the mapiter analyzer: Validate used to range over maps directly, so
// with several invalid entries the reported error was whichever one Go's
// randomized map order visited first.  Validation now walks sorted keys;
// these tests repeat Validate enough times that the old behavior would
// almost surely report at least two different entries.

const validateRepeats = 100

// TestValidateChannelErrorDeterministic: two unknown channel keys; the
// lexically first ("C") must be the one reported, every run.
func TestValidateChannelErrorDeterministic(t *testing.T) {
	s := &Scenario{
		Name: "bad-channels",
		Channels: map[string]*Channel{
			"D": {BaseBER: 1e-7},
			"C": {BaseBER: 1e-7},
		},
	}
	first := s.Validate()
	if first == nil {
		t.Fatal("Validate accepted unknown channels")
	}
	if !errors.Is(first, ErrInvalid) {
		t.Fatalf("Validate error %v does not wrap ErrInvalid", first)
	}
	if !strings.Contains(first.Error(), `"C"`) {
		t.Fatalf("Validate reported %q, want the sorted-first channel \"C\"", first)
	}
	for i := 0; i < validateRepeats; i++ {
		if err := s.Validate(); err == nil || err.Error() != first.Error() {
			t.Fatalf("run %d: Validate = %v, want stable %v", i, err, first)
		}
	}
}

// TestValidateOverlapErrorDeterministic: overlapping sync-loss windows
// on two different nodes; the overlap check buckets windows per node in
// a map, so the reported node must be the numerically smallest, every
// run.
func TestValidateOverlapErrorDeterministic(t *testing.T) {
	win := func(node int, start, end time.Duration) NodeWindow {
		return NodeWindow{Node: node, Start: Duration(start), End: Duration(end)}
	}
	s := &Scenario{
		Name:     "bad-windows",
		Channels: map[string]*Channel{"A": {BaseBER: 1e-7}},
		Timing: &TimingFaults{
			SyncLoss: []NodeWindow{
				win(7, 10*time.Millisecond, 30*time.Millisecond),
				win(7, 20*time.Millisecond, 40*time.Millisecond),
				win(3, 10*time.Millisecond, 30*time.Millisecond),
				win(3, 20*time.Millisecond, 40*time.Millisecond),
			},
		},
	}
	first := s.Validate()
	if first == nil {
		t.Fatal("Validate accepted overlapping sync-loss windows")
	}
	if !strings.Contains(first.Error(), "node 3 sync-loss") {
		t.Fatalf("Validate reported %q, want the lowest node id (node 3)", first)
	}
	for i := 0; i < validateRepeats; i++ {
		if err := s.Validate(); err == nil || err.Error() != first.Error() {
			t.Fatalf("run %d: Validate = %v, want stable %v", i, err, first)
		}
	}
}
