package scenario

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/flexray-go/coefficient/internal/frame"
	"github.com/flexray-go/coefficient/internal/timebase"
)

func testConfig() timebase.Config {
	return timebase.Config{
		MacrotickDuration:         time.Microsecond,
		MacroPerCycle:             1000,
		StaticSlots:               10,
		StaticSlotLen:             50,
		Minislots:                 40,
		MinislotLen:               5,
		DynamicSlotIdlePhase:      1,
		MinislotActionPointOffset: 1,
	}
}

const fullDoc = `{
  "name": "kitchen-sink",
  "channels": {
    "A": {
      "baseBER": 1e-7,
      "steps":  [{"start": "40ms", "ber": 1e-4}],
      "ramps":  [{"start": "10ms", "end": "20ms", "from": 1e-7, "to": 1e-5}],
      "bursts": [{"start": "25ms", "end": "30ms",
                  "berGood": 1e-7, "berBad": 1e-3,
                  "pGoodToBad": 0.2, "pBadToGood": 0.4}],
      "blackouts": [{"start": "32ms", "end": "35ms"}]
    },
    "B": {"baseBER": 1e-7}
  },
  "nodes": [{"node": 2, "failAt": "20ms", "recoverAt": "50ms"},
            {"node": 3, "failAt": "60ms"}]
}`

func TestParseFullDocument(t *testing.T) {
	s, err := Parse([]byte(fullDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name != "kitchen-sink" {
		t.Errorf("Name = %q", s.Name)
	}
	a := s.Channels["A"]
	if a == nil || len(a.Steps) != 1 || len(a.Ramps) != 1 || len(a.Bursts) != 1 || len(a.Blackouts) != 1 {
		t.Fatalf("channel A timeline incomplete: %+v", a)
	}
	if a.Steps[0].Start.Std() != 40*time.Millisecond || a.Steps[0].End != 0 {
		t.Errorf("step = %+v, want open-ended at 40ms", a.Steps[0])
	}
	if len(s.Nodes) != 2 || s.Nodes[1].RecoverAt != 0 {
		t.Errorf("nodes = %+v", s.Nodes)
	}
}

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse([]byte(fullDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	doc, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	s2, err := Parse(doc)
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	doc2, err := json.Marshal(s2)
	if err != nil {
		t.Fatalf("re-Marshal: %v", err)
	}
	if string(doc) != string(doc2) {
		t.Errorf("round trip not stable:\n%s\n%s", doc, doc2)
	}
}

func TestDurationForms(t *testing.T) {
	// Integer nanoseconds and duration strings are interchangeable.
	s, err := Parse([]byte(`{"channels":{"A":{"steps":[{"start": 5000000, "ber": 1e-5}]}}}`))
	if err != nil {
		t.Fatalf("Parse(ns): %v", err)
	}
	if got := s.Channels["A"].Steps[0].Start.Std(); got != 5*time.Millisecond {
		t.Errorf("integer duration = %v, want 5ms", got)
	}
}

func TestLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scn.json")
	if err := os.WriteFile(path, []byte(fullDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load(missing) succeeded")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
		want error
	}{
		{"malformed json", `{"channels":`, ErrParse},
		{"unknown field", `{"chanels": {}}`, ErrParse},
		{"trailing data", `{"name": "x"} {"name": "y"}`, ErrParse},
		{"unknown channel", `{"channels": {"C": {"baseBER": 1e-7}}}`, ErrInvalid},
		{"null channel", `{"channels": {"A": null}}`, ErrInvalid},
		{"bad base BER", `{"channels": {"A": {"baseBER": 1.5}}}`, ErrInvalid},
		{"negative step start", `{"channels": {"A": {"steps": [{"start": -1, "ber": 1e-5}]}}}`, ErrInvalid},
		{"empty step window", `{"channels": {"A": {"steps": [{"start": "10ms", "end": "10ms", "ber": 1e-5}]}}}`, ErrInvalid},
		{"overlapping steps", `{"channels": {"A": {"steps": [
			{"start": "10ms", "end": "30ms", "ber": 1e-5},
			{"start": "20ms", "end": "40ms", "ber": 1e-4}]}}}`, ErrInvalid},
		{"step overlaps open step", `{"channels": {"A": {"steps": [
			{"start": "10ms", "ber": 1e-5},
			{"start": "20ms", "end": "40ms", "ber": 1e-4}]}}}`, ErrInvalid},
		{"ramp without end", `{"channels": {"A": {"ramps": [{"start": "10ms", "from": 1e-7, "to": 1e-5}]}}}`, ErrInvalid},
		{"ramp overlaps step", `{"channels": {"A": {
			"steps": [{"start": "10ms", "end": "30ms", "ber": 1e-5}],
			"ramps": [{"start": "20ms", "end": "40ms", "from": 1e-7, "to": 1e-5}]}}}`, ErrInvalid},
		{"burst bad probability", `{"channels": {"A": {"bursts": [
			{"start": "10ms", "end": "20ms", "berGood": 1e-7, "berBad": 1e-3,
			 "pGoodToBad": 2, "pBadToGood": 0.4}]}}}`, ErrInvalid},
		{"overlapping blackouts", `{"channels": {"A": {"blackouts": [
			{"start": "10ms", "end": "30ms"}, {"start": "20ms", "end": "40ms"}]}}}`, ErrInvalid},
		{"negative node", `{"nodes": [{"node": -1, "failAt": "10ms"}]}`, ErrInvalid},
		{"negative failAt", `{"nodes": [{"node": 1, "failAt": -5}]}`, ErrInvalid},
		{"recover before fail", `{"nodes": [{"node": 1, "failAt": "20ms", "recoverAt": "10ms"}]}`, ErrInvalid},
		{"overlapping node windows", `{"nodes": [
			{"node": 1, "failAt": "10ms", "recoverAt": "30ms"},
			{"node": 1, "failAt": "20ms", "recoverAt": "40ms"}]}`, ErrInvalid},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse([]byte(tt.doc))
			if !errors.Is(err, tt.want) {
				t.Fatalf("Parse = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestCompileWindows(t *testing.T) {
	s, err := Parse([]byte(fullDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rt, err := s.Compile(testConfig(), 1)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if rt.Name() != "kitchen-sink" {
		t.Errorf("Name = %q", rt.Name())
	}
	if rt.Injector(frame.ChannelA) == nil || rt.Injector(frame.ChannelB) == nil {
		t.Fatal("scripted channels missing injectors")
	}
	// Blackout [32ms, 35ms) on A only; macrotick = 1µs.
	for _, tt := range []struct {
		at   timebase.Macrotick
		want bool
	}{{31_999, false}, {32_000, true}, {34_999, true}, {35_000, false}} {
		if got := rt.BlackedOut(frame.ChannelA, tt.at); got != tt.want {
			t.Errorf("BlackedOut(A, %d) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if rt.BlackedOut(frame.ChannelB, 33_000) {
		t.Error("channel B blacked out without a window")
	}
	// Node 2 down [20ms, 50ms); node 3 down from 60ms forever.
	if got := rt.NodeIDs(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("NodeIDs = %v, want [2 3]", got)
	}
	for _, tt := range []struct {
		node int
		at   timebase.Macrotick
		want bool
	}{
		{2, 19_999, false}, {2, 20_000, true}, {2, 49_999, true}, {2, 50_000, false},
		{3, 59_999, false}, {3, 60_000, true}, {3, 1 << 40, true},
	} {
		if got := rt.NodeDown(tt.node, tt.at); got != tt.want {
			t.Errorf("NodeDown(%d, %d) = %v, want %v", tt.node, tt.at, got, tt.want)
		}
	}
}

// Identical seed + scenario must yield an identical injected fault stream.
func TestCompileDeterministic(t *testing.T) {
	compile := func() []bool {
		s, err := Parse([]byte(fullDoc))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		rt, err := s.Compile(testConfig(), 99)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		inj := rt.Injector(frame.ChannelA)
		tv := inj.(interface {
			CorruptsAt(bits int, at timebase.Macrotick) bool
		})
		var outcomes []bool
		for at := timebase.Macrotick(0); at < 60_000; at += 37 {
			outcomes = append(outcomes, tv.CorruptsAt(500, at))
		}
		return outcomes
	}
	a, b := compile(), compile()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed+scenario diverged at draw %d", i)
		}
	}
}
