// Package metrics accumulates the four quantities the paper's evaluation
// reports: overall running time (makespan), bandwidth utilization, average
// transmission latency per segment kind, and deadline miss ratio.
package metrics

import (
	"math"
	"sort"
	"time"

	"github.com/flexray-go/coefficient/internal/timebase"
)

// Series accumulates scalar samples and answers summary statistics.
type Series struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add appends a sample.  The first append reserves a chunk so long series
// skip the small growth steps of append's doubling schedule.
func (s *Series) Add(v float64) {
	if s.samples == nil {
		s.samples = make([]float64, 0, 64)
	}
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
}

// Reset empties the series in place, keeping the sample buffer so the
// next run's appends reuse it instead of re-growing.
//
//perf:hotpath
func (s *Series) Reset() {
	s.samples = s.samples[:0]
	s.sorted = false
	s.sum = 0
}

// N returns the number of samples.
func (s *Series) N() int { return len(s.samples) }

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-th percentile (0 < p ≤ 100) by nearest-rank, or
// 0 for an empty series.
func (s *Series) Percentile(p float64) float64 {
	if len(s.samples) == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	s.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(s.samples))))
	if rank < 1 {
		rank = 1
	}
	return s.samples[rank-1]
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func (s *Series) StdDev() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Series) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// SegmentKind distinguishes static- and dynamic-segment traffic in reports.
type SegmentKind int

// Traffic classes reported separately by the paper.
const (
	// Static covers periodic messages carried in the static segment.
	Static SegmentKind = iota + 1
	// Dynamic covers aperiodic messages carried in the dynamic segment.
	Dynamic
)

// String implements fmt.Stringer.
func (k SegmentKind) String() string {
	if k == Static {
		return "static"
	}
	return "dynamic"
}

// Collector accumulates a full simulation's worth of measurements.
type Collector struct {
	cfg timebase.Config

	// latency holds per-kind delivery latencies in macroticks, indexed by
	// SegmentKind (valid kinds are 1 and 2, so a 3-element array replaces
	// a map on the per-delivery path).
	latency [int(Dynamic) + 1]*Series
	// perFrame holds per-frame-ID delivery latencies in macroticks
	// (Figure 4a plots latency against frame ID), indexed densely by
	// frame ID and grown on demand.
	perFrame []*Series
	// delivered/missed/dropped instances per kind.
	delivered [int(Dynamic) + 1]int64
	missed    [int(Dynamic) + 1]int64
	dropped   [int(Dynamic) + 1]int64
	// busyMT accumulates useful channel-busy macroticks: wire time of the
	// transmissions that first delivered an instance.  Redundant copies,
	// faulted attempts and surplus retransmissions do not count — this is
	// the paper's "bandwidth actually used".
	busyMT timebase.Macrotick
	// rawBusyMT accumulates all wire time, useful or not.
	rawBusyMT timebase.Macrotick
	// channelMT accumulates total channel macroticks observed.
	channelMT timebase.Macrotick
	// payloadBits accumulates delivered unique payload bits.
	payloadBits int64
	// retransmissions counts retransmission attempts put on the wire.
	retransmissions int64
	// faults counts corrupted transmissions.
	faults int64
	// makespan is the completion time of the last delivered instance.
	makespan timebase.Macrotick
	// adaptive holds the reliability controller's gauges.
	adaptive AdaptiveGauges
	// sync holds the clock-synchronization health gauges.
	sync SyncGauges
}

// AdaptiveGauges exposes the adaptive reliability controller's counters
// and estimator readings.  The simulator hands a pointer to the scheduler
// through the environment; schedulers without a controller leave it zero.
type AdaptiveGauges struct {
	// Replans counts runtime recomputations of the retransmission plan.
	Replans int64
	// Failovers counts activations of dual-channel failover.
	Failovers int64
	// ShedMessages counts load-shedding actions (messages shed; a message
	// shed, restored and shed again counts twice).
	ShedMessages int64
	// RestoredMessages counts shed messages brought back into service.
	RestoredMessages int64
	// ObservedFER maps a channel label ("A", "B") to the estimator's most
	// recent frame-error-rate reading.
	ObservedFER map[string]float64
}

// Replan counts one runtime replan.
func (g *AdaptiveGauges) Replan() {
	if g == nil {
		return
	}
	g.Replans++
}

// Failover counts one failover activation.
func (g *AdaptiveGauges) Failover() {
	if g == nil {
		return
	}
	g.Failovers++
}

// Shed counts n messages shed (n < 0 counts -n messages restored).
func (g *AdaptiveGauges) Shed(n int) {
	if g == nil {
		return
	}
	if n >= 0 {
		g.ShedMessages += int64(n)
	} else {
		g.RestoredMessages += int64(-n)
	}
}

// SetFER records the estimator's frame-error-rate reading for a channel.
func (g *AdaptiveGauges) SetFER(channel string, fer float64) {
	if g == nil {
		return
	}
	if g.ObservedFER == nil {
		g.ObservedFER = make(map[string]float64, 2)
	}
	g.ObservedFER[channel] = fer
}

// snapshot returns a deep copy for the immutable report.
func (g AdaptiveGauges) snapshot() AdaptiveGauges {
	out := g
	if g.ObservedFER != nil {
		out.ObservedFER = make(map[string]float64, len(g.ObservedFER))
		for k, v := range g.ObservedFER {
			out.ObservedFER[k] = v
		}
	}
	return out
}

// Adaptive returns the collector's adaptive gauges for schedulers to
// update in place.
func (c *Collector) Adaptive() *AdaptiveGauges { return &c.adaptive }

// SyncGauges exposes clock-synchronization health: how hard the FTM loop is
// working and whether containment machinery fired.  The simulator's timing
// layer updates it in place; runs without local clocks leave it zero.
type SyncGauges struct {
	// SyncFrames counts sync-frame deviation measurements consumed by the
	// FTM correction loop.
	SyncFrames int64
	// Corrections counts applied offset corrections.
	Corrections int64
	// MaxOffsetMacroticks is the largest observed inter-node clock offset
	// magnitude, in macroticks.
	MaxOffsetMacroticks float64
	// MaxCorrectionMacroticks is the largest applied offset-correction
	// magnitude, in macroticks.
	MaxCorrectionMacroticks float64
	// GuardianBlocks counts transmissions vetoed by a bus guardian.
	GuardianBlocks int64
	// SyncLossEvents counts nodes exceeding the precision bound (or losing
	// their sync-frame view) per double-cycle check.
	SyncLossEvents int64
	// PassiveTransitions counts normal-active → normal-passive demotions.
	PassiveTransitions int64
	// Halts counts normal-passive → halt transitions.
	Halts int64
	// Reintegrations counts halted nodes that rejoined via startup.
	Reintegrations int64
}

// SyncFrame counts n sync-frame deviation measurements.
func (g *SyncGauges) SyncFrame(n int) {
	if g == nil {
		return
	}
	g.SyncFrames += int64(n)
}

// Correction records one applied offset correction of the given magnitude
// in macroticks.
func (g *SyncGauges) Correction(magnitudeMT float64) {
	if g == nil {
		return
	}
	g.Corrections++
	if magnitudeMT < 0 {
		magnitudeMT = -magnitudeMT
	}
	if magnitudeMT > g.MaxCorrectionMacroticks {
		g.MaxCorrectionMacroticks = magnitudeMT
	}
}

// ObserveOffset records an inter-node clock offset reading in macroticks.
func (g *SyncGauges) ObserveOffset(offsetMT float64) {
	if g == nil {
		return
	}
	if offsetMT < 0 {
		offsetMT = -offsetMT
	}
	if offsetMT > g.MaxOffsetMacroticks {
		g.MaxOffsetMacroticks = offsetMT
	}
}

// GuardianBlock counts one bus-guardian veto.
func (g *SyncGauges) GuardianBlock() {
	if g == nil {
		return
	}
	g.GuardianBlocks++
}

// SyncLoss counts one precision-bound violation.
func (g *SyncGauges) SyncLoss() {
	if g == nil {
		return
	}
	g.SyncLossEvents++
}

// Passive counts one demotion to normal-passive.
func (g *SyncGauges) Passive() {
	if g == nil {
		return
	}
	g.PassiveTransitions++
}

// Halt counts one transition to the halt state.
func (g *SyncGauges) Halt() {
	if g == nil {
		return
	}
	g.Halts++
}

// Reintegration counts one halted node rejoining the cluster.
func (g *SyncGauges) Reintegration() {
	if g == nil {
		return
	}
	g.Reintegrations++
}

// SyncHealth returns the collector's sync gauges for the simulator's timing
// layer to update in place.
func (c *Collector) SyncHealth() *SyncGauges { return &c.sync }

// NewCollector returns a collector for simulations under cfg.
func NewCollector(cfg timebase.Config) *Collector {
	c := &Collector{cfg: cfg}
	c.latency[Static] = &Series{}
	c.latency[Dynamic] = &Series{}
	return c
}

// Reset returns the collector to its just-constructed state while
// keeping every buffer: the latency and per-frame series are truncated
// in place and all counters zeroed.  The AdaptiveGauges and SyncGauges
// values are cleared without moving, so the pointers handed out by
// Adaptive and SyncHealth stay valid across replicas.
//
//perf:hotpath
func (c *Collector) Reset() {
	c.latency[Static].Reset()
	c.latency[Dynamic].Reset()
	for _, s := range c.perFrame {
		if s != nil {
			s.Reset()
		}
	}
	for kind := range c.delivered {
		c.delivered[kind] = 0
		c.missed[kind] = 0
		c.dropped[kind] = 0
	}
	c.busyMT = 0
	c.rawBusyMT = 0
	c.channelMT = 0
	c.payloadBits = 0
	c.retransmissions = 0
	c.faults = 0
	c.makespan = 0
	c.adaptive = AdaptiveGauges{}
	c.sync = SyncGauges{}
}

// Delivered records a successful delivery: release-to-completion latency and
// whether the deadline was met.
func (c *Collector) Delivered(kind SegmentKind, release, completion, deadline timebase.Macrotick) {
	c.DeliveredFrame(kind, 0, release, completion, deadline)
}

// DeliveredFrame is Delivered with per-frame-ID latency attribution
// (frameID 0 skips the per-frame series).
func (c *Collector) DeliveredFrame(kind SegmentKind, frameID int, release, completion, deadline timebase.Macrotick) {
	c.latency[kind].Add(float64(completion - release))
	if frameID > 0 {
		if frameID >= len(c.perFrame) {
			grown := make([]*Series, frameID+1)
			copy(grown, c.perFrame)
			c.perFrame = grown
		}
		s := c.perFrame[frameID]
		if s == nil {
			s = &Series{}
			c.perFrame[frameID] = s
		}
		s.Add(float64(completion - release))
	}
	c.delivered[kind]++
	if completion > deadline {
		c.missed[kind]++
	}
	if completion > c.makespan {
		c.makespan = completion
	}
}

// Dropped records an instance abandoned without delivery (counted as a
// deadline miss).
func (c *Collector) Dropped(kind SegmentKind) {
	c.dropped[kind]++
	c.missed[kind]++
}

// BusBusy adds useful channel-busy time (first-delivery transmissions).
func (c *Collector) BusBusy(mt timebase.Macrotick) { c.busyMT += mt }

// PayloadDelivered adds a delivered instance's unique payload bits.
func (c *Collector) PayloadDelivered(bits int) { c.payloadBits += int64(bits) }

// RawBusy adds wire time regardless of usefulness (faulted attempts,
// redundant copies, retransmissions).
func (c *Collector) RawBusy(mt timebase.Macrotick) { c.rawBusyMT += mt }

// ChannelTime adds observed channel time (per channel: one cycle simulated
// on two channels adds two cycle lengths).
func (c *Collector) ChannelTime(mt timebase.Macrotick) { c.channelMT += mt }

// Retransmission counts one retransmission attempt on the wire.
func (c *Collector) Retransmission() { c.retransmissions++ }

// Fault counts one corrupted transmission.
func (c *Collector) Fault() { c.faults++ }

// Report is an immutable summary of a simulation run.
type Report struct {
	// Makespan is the completion time of the last delivered instance.
	Makespan time.Duration
	// BandwidthUtilization is useful busy channel time over total channel
	// time, in [0, 1] — the paper's "ratio of the bandwidth that is
	// actually used to the whole bandwidth".
	BandwidthUtilization float64
	// RawUtilization is all wire time over total channel time; it exceeds
	// BandwidthUtilization by the cost of faults, redundancy and
	// retransmissions.
	RawUtilization float64
	// GoodputBps is the delivered unique payload rate in bits per second
	// of simulated time (0 when no channel time was observed).
	GoodputBps float64
	// MeanLatency maps segment kind to the mean delivery latency.
	MeanLatency map[SegmentKind]time.Duration
	// P99Latency maps segment kind to the 99th-percentile latency.
	P99Latency map[SegmentKind]time.Duration
	// MaxLatency maps segment kind to the maximum latency.
	MaxLatency map[SegmentKind]time.Duration
	// DeadlineMissRatio maps segment kind to misses (late deliveries plus
	// drops) over all completed-or-dropped instances.
	DeadlineMissRatio map[SegmentKind]float64
	// PerFrameMean maps frame IDs to mean delivery latency (only frames
	// recorded with DeliveredFrame appear).
	PerFrameMean map[int]time.Duration
	// Delivered, Dropped count instances per kind.
	Delivered, Dropped map[SegmentKind]int64
	// Retransmissions is the number of retransmission attempts.
	Retransmissions int64
	// Faults is the number of corrupted transmissions.
	Faults int64
	// Adaptive holds the adaptive reliability controller's gauges (all
	// zero for schedulers without a controller).
	Adaptive AdaptiveGauges
	// Sync holds the clock-synchronization health gauges (all zero for
	// runs without local clocks).
	Sync SyncGauges
}

// Report summarizes the collected measurements.
func (c *Collector) Report() Report {
	r := Report{
		Makespan:          c.cfg.ToDuration(c.makespan),
		PerFrameMean:      make(map[int]time.Duration, len(c.perFrame)),
		MeanLatency:       make(map[SegmentKind]time.Duration, 2),
		P99Latency:        make(map[SegmentKind]time.Duration, 2),
		MaxLatency:        make(map[SegmentKind]time.Duration, 2),
		DeadlineMissRatio: make(map[SegmentKind]float64, 2),
		Delivered:         make(map[SegmentKind]int64, 2),
		Dropped:           make(map[SegmentKind]int64, 2),
		Retransmissions:   c.retransmissions,
		Faults:            c.faults,
		Adaptive:          c.adaptive.snapshot(),
		Sync:              c.sync,
	}
	if c.channelMT > 0 {
		r.BandwidthUtilization = float64(c.busyMT) / float64(c.channelMT)
		r.RawUtilization = float64(c.rawBusyMT) / float64(c.channelMT)
		// channelMT counts both channels; simulated time is half of it.
		simSeconds := float64(c.cfg.ToDuration(c.channelMT/2)) / float64(time.Second)
		if simSeconds > 0 {
			r.GoodputBps = float64(c.payloadBits) / simSeconds
		}
	}
	for id, s := range c.perFrame {
		if s == nil {
			continue
		}
		r.PerFrameMean[id] = c.cfg.ToDuration(timebase.Macrotick(s.Mean()))
	}
	for _, kind := range []SegmentKind{Static, Dynamic} {
		s := c.latency[kind]
		r.MeanLatency[kind] = c.cfg.ToDuration(timebase.Macrotick(s.Mean()))
		r.P99Latency[kind] = c.cfg.ToDuration(timebase.Macrotick(s.Percentile(99)))
		r.MaxLatency[kind] = c.cfg.ToDuration(timebase.Macrotick(s.Max()))
		r.Delivered[kind] = c.delivered[kind]
		r.Dropped[kind] = c.dropped[kind]
		total := c.delivered[kind] + c.dropped[kind]
		if total > 0 {
			r.DeadlineMissRatio[kind] = float64(c.missed[kind]) / float64(total)
		}
	}
	return r
}

// OverallMissRatio returns the miss ratio across both kinds.
func (r Report) OverallMissRatio() float64 {
	var missedWeighted float64
	var total int64
	for _, kind := range []SegmentKind{Static, Dynamic} {
		n := r.Delivered[kind] + r.Dropped[kind]
		missedWeighted += r.DeadlineMissRatio[kind] * float64(n)
		total += n
	}
	if total == 0 {
		return 0
	}
	return missedWeighted / float64(total)
}
