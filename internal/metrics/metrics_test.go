package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/flexray-go/coefficient/internal/timebase"
)

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Percentile(50) != 0 || s.StdDev() != 0 {
		t.Error("empty series should report zeros")
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Errorf("N() = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean() = %g, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("P50 = %g, want 3", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("P100 = %g, want 5", got)
	}
	if got := s.Percentile(200); got != 5 {
		t.Errorf("P200 = %g, want 5 (clamped)", got)
	}
	// Population stddev of 1..5 = sqrt(2).
	if got := s.StdDev(); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("StdDev() = %g, want sqrt(2)", got)
	}
}

func TestSeriesAddAfterQuery(t *testing.T) {
	var s Series
	s.Add(5)
	if s.Max() != 5 {
		t.Fatal("Max before second add")
	}
	s.Add(10) // must re-sort lazily
	if s.Max() != 10 {
		t.Errorf("Max() = %g after late add, want 10", s.Max())
	}
}

// Property: Min ≤ Percentile(p) ≤ Max, and percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, p1, p2 uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var s Series
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		a := float64(p1%100) + 1
		b := float64(p2%100) + 1
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return s.Min() <= pa && pa <= pb && pb <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testCollector() *Collector {
	cfg := timebase.LatencyConfig(50)
	return NewCollector(cfg)
}

func TestCollectorReport(t *testing.T) {
	c := testCollector()
	// Two static deliveries (one late), one dynamic, one dynamic drop.
	c.Delivered(Static, 0, 500, 1000)
	c.Delivered(Static, 100, 1500, 1200) // late
	c.Delivered(Dynamic, 0, 2000, 50000)
	c.Dropped(Dynamic)
	c.BusBusy(300)
	c.ChannelTime(2000)
	c.Retransmission()
	c.Fault()

	r := c.Report()
	if r.Makespan != 2*time.Millisecond {
		t.Errorf("Makespan = %v, want 2ms", r.Makespan)
	}
	if math.Abs(r.BandwidthUtilization-0.15) > 1e-12 {
		t.Errorf("BandwidthUtilization = %g, want 0.15", r.BandwidthUtilization)
	}
	// Static mean latency: (500 + 1400)/2 = 950µs.
	if r.MeanLatency[Static] != 950*time.Microsecond {
		t.Errorf("MeanLatency[Static] = %v, want 950µs", r.MeanLatency[Static])
	}
	if r.DeadlineMissRatio[Static] != 0.5 {
		t.Errorf("MissRatio[Static] = %g, want 0.5", r.DeadlineMissRatio[Static])
	}
	if r.DeadlineMissRatio[Dynamic] != 0.5 { // 1 drop of 2 total
		t.Errorf("MissRatio[Dynamic] = %g, want 0.5", r.DeadlineMissRatio[Dynamic])
	}
	if r.Delivered[Static] != 2 || r.Dropped[Dynamic] != 1 {
		t.Errorf("Delivered/Dropped = %v/%v", r.Delivered, r.Dropped)
	}
	if r.Retransmissions != 1 || r.Faults != 1 {
		t.Errorf("Retx/Faults = %d/%d", r.Retransmissions, r.Faults)
	}
	if got := r.OverallMissRatio(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("OverallMissRatio() = %g, want 0.5", got)
	}
}

func TestCollectorEmptyReport(t *testing.T) {
	r := testCollector().Report()
	if r.BandwidthUtilization != 0 || r.Makespan != 0 {
		t.Error("empty collector should report zeros")
	}
	if r.OverallMissRatio() != 0 {
		t.Errorf("OverallMissRatio() = %g", r.OverallMissRatio())
	}
}

func TestSegmentKindString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Error("SegmentKind.String() mismatch")
	}
}

func TestPerFrameMean(t *testing.T) {
	c := testCollector()
	c.DeliveredFrame(Static, 3, 0, 100, 1000)
	c.DeliveredFrame(Static, 3, 0, 300, 1000)
	c.DeliveredFrame(Static, 7, 0, 500, 1000)
	c.Delivered(Dynamic, 0, 50, 1000) // frame 0: not attributed
	r := c.Report()
	if got := r.PerFrameMean[3]; got != 200*time.Microsecond {
		t.Errorf("PerFrameMean[3] = %v, want 200µs", got)
	}
	if got := r.PerFrameMean[7]; got != 500*time.Microsecond {
		t.Errorf("PerFrameMean[7] = %v, want 500µs", got)
	}
	if _, ok := r.PerFrameMean[0]; ok {
		t.Error("frame 0 should not be attributed")
	}
	if len(r.PerFrameMean) != 2 {
		t.Errorf("PerFrameMean has %d entries", len(r.PerFrameMean))
	}
}

func TestGoodput(t *testing.T) {
	c := testCollector()
	c.PayloadDelivered(1000)
	c.PayloadDelivered(500)
	// 2000 macroticks of channel time over two channels = 1ms simulated.
	c.ChannelTime(2000)
	r := c.Report()
	// 1500 bits over 1ms = 1.5 Mbit/s.
	if got := r.GoodputBps; got != 1_500_000 {
		t.Errorf("GoodputBps = %g, want 1.5e6", got)
	}
}
