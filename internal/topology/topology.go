// Package topology models FlexRay cluster topologies: the set of nodes
// (ECUs) and how each connects to the two channels, via a shared bus, active
// star couplers, or a hybrid of both.
//
// The simulator uses the topology to decide which nodes may transmit and
// observe frames on which channel; a frame sent on a channel a node is not
// attached to is a configuration error caught at validation time.
package topology

import (
	"errors"
	"fmt"

	"github.com/flexray-go/coefficient/internal/frame"
)

// Kind is the physical layout of a channel.
type Kind int

// Channel layouts supported by the FlexRay specification.
const (
	// KindBus is a passive linear bus.
	KindBus Kind = iota + 1
	// KindStar is an active star: all traffic passes one or more couplers.
	KindStar
	// KindHybrid mixes bus stubs attached to star couplers.
	KindHybrid
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBus:
		return "bus"
	case KindStar:
		return "star"
	case KindHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Errors returned by Validate.
var (
	// ErrNoNodes is returned for clusters without nodes.
	ErrNoNodes = errors.New("topology: cluster has no nodes")
	// ErrDuplicateNode is returned for repeated node IDs.
	ErrDuplicateNode = errors.New("topology: duplicate node ID")
	// ErrUnattached is returned for a node attached to no channel.
	ErrUnattached = errors.New("topology: node attached to no channel")
	// ErrNoCoupler is returned for star channels without couplers.
	ErrNoCoupler = errors.New("topology: star channel needs at least one coupler")
)

// Node is one ECU attachment point.
type Node struct {
	// ID is the cluster-unique node identifier.
	ID int
	// Name labels the node for tracing.
	Name string
	// ChannelA and ChannelB say which channels the node's bus drivers are
	// attached to.  Safety-critical nodes attach to both.
	ChannelA, ChannelB bool
}

// Attached reports whether the node is attached to ch.
func (n Node) Attached(ch frame.Channel) bool {
	switch ch {
	case frame.ChannelA:
		return n.ChannelA
	case frame.ChannelB:
		return n.ChannelB
	default:
		return false
	}
}

// ChannelConfig describes one channel's physical layout.
type ChannelConfig struct {
	// Kind is the layout.
	Kind Kind
	// Couplers is the number of active star couplers (star/hybrid only).
	Couplers int
}

// Cluster is a validated FlexRay cluster topology.
type Cluster struct {
	// Name labels the cluster.
	Name string
	// Nodes lists the ECUs.
	Nodes []Node
	// ChannelA and ChannelB describe the two channels' layouts.
	ChannelA, ChannelB ChannelConfig
}

// DualChannelBus returns the paper's testbed topology: n nodes, all attached
// to both channels, each channel a passive bus.
func DualChannelBus(n int) Cluster {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			ID:       i,
			Name:     fmt.Sprintf("ecu-%02d", i),
			ChannelA: true,
			ChannelB: true,
		}
	}
	return Cluster{
		Name:     fmt.Sprintf("dual-bus-%d", n),
		Nodes:    nodes,
		ChannelA: ChannelConfig{Kind: KindBus},
		ChannelB: ChannelConfig{Kind: KindBus},
	}
}

// Validate checks the cluster for structural consistency.
func (c Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return ErrNoNodes
	}
	seen := make(map[int]string, len(c.Nodes))
	for _, n := range c.Nodes {
		if prev, dup := seen[n.ID]; dup {
			return fmt.Errorf("%w: %d (%q and %q)", ErrDuplicateNode, n.ID, prev, n.Name)
		}
		seen[n.ID] = n.Name
		if !n.ChannelA && !n.ChannelB {
			return fmt.Errorf("%w: node %d (%q)", ErrUnattached, n.ID, n.Name)
		}
	}
	for _, chc := range []struct {
		ch  frame.Channel
		cfg ChannelConfig
	}{{frame.ChannelA, c.ChannelA}, {frame.ChannelB, c.ChannelB}} {
		switch chc.cfg.Kind {
		case KindBus:
			// No couplers needed.
		case KindStar, KindHybrid:
			if chc.cfg.Couplers < 1 {
				return fmt.Errorf("%w: channel %v", ErrNoCoupler, chc.ch)
			}
		default:
			return fmt.Errorf("topology: channel %v has unknown kind %d", chc.ch, int(chc.cfg.Kind))
		}
	}
	return nil
}

// Node returns the node with the given ID.
func (c Cluster) Node(id int) (Node, bool) {
	for _, n := range c.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// AttachedNodes returns the IDs of nodes attached to ch, in declaration
// order.
func (c Cluster) AttachedNodes(ch frame.Channel) []int {
	var out []int
	for _, n := range c.Nodes {
		if n.Attached(ch) {
			out = append(out, n.ID)
		}
	}
	return out
}
