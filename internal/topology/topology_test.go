package topology

import (
	"errors"
	"testing"

	"github.com/flexray-go/coefficient/internal/frame"
)

func TestDualChannelBus(t *testing.T) {
	c := DualChannelBus(10)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if len(c.Nodes) != 10 {
		t.Fatalf("Nodes = %d, want 10", len(c.Nodes))
	}
	for _, ch := range []frame.Channel{frame.ChannelA, frame.ChannelB} {
		if got := len(c.AttachedNodes(ch)); got != 10 {
			t.Errorf("AttachedNodes(%v) = %d, want 10", ch, got)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		cluster Cluster
		wantErr error
	}{
		{
			name:    "no nodes",
			cluster: Cluster{ChannelA: ChannelConfig{Kind: KindBus}, ChannelB: ChannelConfig{Kind: KindBus}},
			wantErr: ErrNoNodes,
		},
		{
			name: "duplicate id",
			cluster: Cluster{
				Nodes:    []Node{{ID: 1, ChannelA: true}, {ID: 1, ChannelA: true}},
				ChannelA: ChannelConfig{Kind: KindBus},
				ChannelB: ChannelConfig{Kind: KindBus},
			},
			wantErr: ErrDuplicateNode,
		},
		{
			name: "unattached node",
			cluster: Cluster{
				Nodes:    []Node{{ID: 1}},
				ChannelA: ChannelConfig{Kind: KindBus},
				ChannelB: ChannelConfig{Kind: KindBus},
			},
			wantErr: ErrUnattached,
		},
		{
			name: "star without coupler",
			cluster: Cluster{
				Nodes:    []Node{{ID: 1, ChannelA: true}},
				ChannelA: ChannelConfig{Kind: KindStar},
				ChannelB: ChannelConfig{Kind: KindBus},
			},
			wantErr: ErrNoCoupler,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cluster.Validate(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestValidateStarWithCoupler(t *testing.T) {
	c := Cluster{
		Nodes:    []Node{{ID: 1, ChannelA: true, ChannelB: true}},
		ChannelA: ChannelConfig{Kind: KindStar, Couplers: 1},
		ChannelB: ChannelConfig{Kind: KindHybrid, Couplers: 2},
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
}

func TestValidateUnknownKind(t *testing.T) {
	c := Cluster{
		Nodes:    []Node{{ID: 1, ChannelA: true}},
		ChannelA: ChannelConfig{Kind: Kind(42)},
		ChannelB: ChannelConfig{Kind: KindBus},
	}
	if err := c.Validate(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestNodeLookup(t *testing.T) {
	c := DualChannelBus(3)
	n, ok := c.Node(2)
	if !ok || n.ID != 2 {
		t.Errorf("Node(2) = %+v, %v", n, ok)
	}
	if _, ok := c.Node(99); ok {
		t.Error("Node(99) found")
	}
}

func TestAttachedPartial(t *testing.T) {
	c := Cluster{
		Nodes: []Node{
			{ID: 0, ChannelA: true},
			{ID: 1, ChannelB: true},
			{ID: 2, ChannelA: true, ChannelB: true},
		},
		ChannelA: ChannelConfig{Kind: KindBus},
		ChannelB: ChannelConfig{Kind: KindBus},
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	a := c.AttachedNodes(frame.ChannelA)
	if len(a) != 2 || a[0] != 0 || a[1] != 2 {
		t.Errorf("AttachedNodes(A) = %v, want [0 2]", a)
	}
	if !c.Nodes[2].Attached(frame.ChannelB) {
		t.Error("node 2 should be attached to B")
	}
	if c.Nodes[0].Attached(frame.Channel(9)) {
		t.Error("attached to invalid channel")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindBus: "bus", KindStar: "star", KindHybrid: "hybrid", Kind(9): "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
