package fault

import (
	"fmt"
	"sort"
	"sync"

	"github.com/flexray-go/coefficient/internal/timebase"
)

// TimeVarying is an Injector whose fault process depends on the bus time.
// The simulation engine passes the transmission start time so scripted
// fault timelines (BER steps, ramps, burst episodes) stay aligned with the
// macrotick clock regardless of how many transmissions occur.
type TimeVarying interface {
	Injector
	// CorruptsAt reports whether a transmission of `bits` bits starting at
	// macrotick `at` is corrupted.
	CorruptsAt(bits int, at timebase.Macrotick) bool
}

// OpenEnd marks a phase or window that lasts until the end of the run.
const OpenEnd timebase.Macrotick = 1<<63 - 1

// BERPhase is one window of a piecewise bit-error-rate profile.  Within
// [Start, End) the BER ramps linearly from From to To; a step is a phase
// with From == To.  Phases must not overlap; outside every phase the
// profile's base BER applies.
type BERPhase struct {
	// Start and End bound the phase in macroticks, half-open [Start, End).
	// End == OpenEnd keeps the phase active until the end of the run.
	Start, End timebase.Macrotick
	// From and To are the BER at Start and End.
	From, To float64
}

// BurstWindow is one Gilbert–Elliott burst episode.  Within [Start, End)
// the two-state model replaces the BER profile; each window keeps its own
// channel state, starting in the Good state.
type BurstWindow struct {
	// Start and End bound the episode in macroticks, half-open [Start, End).
	Start, End timebase.Macrotick
	// GE parameterizes the two-state model inside the window.
	GE GilbertElliottConfig
}

// Profile is a deterministic time-varying injector: a base BER overlaid
// with step/ramp phases and Gilbert–Elliott burst episodes.  It is the
// fault model the scenario engine compiles channel timelines into.
type Profile struct {
	mu     sync.Mutex
	base   float64
	phases []BERPhase
	bursts []burstState
	rng    *RNG
	stats  Stats
	lastAt timebase.Macrotick
}

type burstState struct {
	BurstWindow
	bad bool
}

var _ TimeVarying = (*Profile)(nil)

func checkGEConfig(cfg GilbertElliottConfig) error {
	for _, ber := range []float64{cfg.BERGood, cfg.BERBad} {
		if ber < 0 || ber >= 1 {
			return fmt.Errorf("%w: %g", ErrBadBER, ber)
		}
	}
	for _, p := range []float64{cfg.PGoodToBad, cfg.PBadToGood} {
		if p < 0 || p > 1 {
			return fmt.Errorf("fault: transition probability %g outside [0,1]", p)
		}
	}
	return nil
}

// NewProfile returns a time-varying injector with the given base BER,
// phases and burst windows, seeded deterministically.  Phases must not
// overlap each other, and burst windows must not overlap each other; a
// burst window may overlap a phase (the burst model wins while active).
func NewProfile(base float64, phases []BERPhase, bursts []BurstWindow, seed uint64) (*Profile, error) {
	if base < 0 || base >= 1 {
		return nil, fmt.Errorf("%w: base %g", ErrBadBER, base)
	}
	ph := append([]BERPhase(nil), phases...)
	sort.Slice(ph, func(i, j int) bool { return ph[i].Start < ph[j].Start })
	for i, p := range ph {
		if p.Start < 0 {
			return nil, fmt.Errorf("fault: phase start %d negative", p.Start)
		}
		if p.End <= p.Start {
			return nil, fmt.Errorf("fault: phase [%d, %d) empty", p.Start, p.End)
		}
		for _, ber := range []float64{p.From, p.To} {
			if ber < 0 || ber >= 1 {
				return nil, fmt.Errorf("%w: phase BER %g", ErrBadBER, ber)
			}
		}
		if i > 0 && p.Start < ph[i-1].End {
			return nil, fmt.Errorf("fault: phases [%d, %d) and [%d, %d) overlap",
				ph[i-1].Start, ph[i-1].End, p.Start, p.End)
		}
	}
	bw := make([]burstState, 0, len(bursts))
	for _, b := range bursts {
		bw = append(bw, burstState{BurstWindow: b})
	}
	sort.Slice(bw, func(i, j int) bool { return bw[i].Start < bw[j].Start })
	for i, b := range bw {
		if b.Start < 0 {
			return nil, fmt.Errorf("fault: burst start %d negative", b.Start)
		}
		if b.End <= b.Start {
			return nil, fmt.Errorf("fault: burst [%d, %d) empty", b.Start, b.End)
		}
		if err := checkGEConfig(b.GE); err != nil {
			return nil, err
		}
		if i > 0 && b.Start < bw[i-1].End {
			return nil, fmt.Errorf("fault: bursts [%d, %d) and [%d, %d) overlap",
				bw[i-1].Start, bw[i-1].End, b.Start, b.End)
		}
	}
	return &Profile{base: base, phases: ph, bursts: bw, rng: NewRNG(seed)}, nil
}

// BERAt returns the effective bit error rate at macrotick `at`, ignoring
// burst episodes.
func (p *Profile) BERAt(at timebase.Macrotick) float64 {
	for _, ph := range p.phases {
		if at < ph.Start {
			break
		}
		if at >= ph.End {
			continue
		}
		if ph.From == ph.To || ph.End == OpenEnd {
			return ph.From
		}
		frac := float64(at-ph.Start) / float64(ph.End-ph.Start)
		return ph.From + (ph.To-ph.From)*frac
	}
	return p.base
}

// CorruptsAt implements TimeVarying.
func (p *Profile) CorruptsAt(bits int, at timebase.Macrotick) bool {
	if bits <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastAt = at
	ber := p.BERAt(at)
	for i := range p.bursts {
		b := &p.bursts[i]
		if at < b.Start {
			break
		}
		if at >= b.End {
			continue
		}
		// Burst episode: state transition first, then the state's BER.
		if b.bad {
			if p.rng.Bernoulli(b.GE.PBadToGood) {
				b.bad = false
			}
		} else if p.rng.Bernoulli(b.GE.PGoodToBad) {
			b.bad = true
		}
		ber = b.GE.BERGood
		if b.bad {
			ber = b.GE.BERBad
		}
		break
	}
	prob, err := FrameFailureProb(ber, bits)
	if err != nil {
		return false
	}
	p.stats.Transmissions++
	hit := p.rng.Bernoulli(prob)
	if hit {
		p.stats.Faults++
	}
	return hit
}

// Corrupts implements Injector using the most recently observed time (the
// engine always calls CorruptsAt; this is a compatibility fallback).
func (p *Profile) Corrupts(bits int) bool {
	p.mu.Lock()
	last := p.lastAt
	p.mu.Unlock()
	return p.CorruptsAt(bits, last)
}

// Stats implements Injector.
func (p *Profile) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
