package fault

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different-seed RNGs agree on %d of 1000 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		buckets[int(v*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		if c < n/10-n/100 || c > n/10+n/100 {
			t.Errorf("bucket %d has %d draws, want ~%d", i, c, n/10)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGBernoulliEdges(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestRNGFork(t *testing.T) {
	parent := NewRNG(42)
	child := parent.Fork()
	// The fork must not replay the parent's stream.
	p2 := NewRNG(42)
	p2.Uint64() // consume the draw used by Fork
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			t.Fatal("fork correlates with parent stream")
		}
	}
}

func TestFrameFailureProb(t *testing.T) {
	// Known values: p = 1-(1-BER)^W.
	tests := []struct {
		ber  float64
		bits int
		want float64
	}{
		{0, 1000, 0},
		{1e-7, 1000, 1 - math.Pow(1-1e-7, 1000)},
		{1e-9, 1292, 1 - math.Pow(1-1e-9, 1292)},
		{0.5, 2, 0.75},
	}
	for _, tt := range tests {
		got, err := FrameFailureProb(tt.ber, tt.bits)
		if err != nil {
			t.Fatalf("FrameFailureProb(%g, %d) error: %v", tt.ber, tt.bits, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("FrameFailureProb(%g, %d) = %g, want %g", tt.ber, tt.bits, got, tt.want)
		}
	}
}

func TestFrameFailureProbErrors(t *testing.T) {
	if _, err := FrameFailureProb(-0.1, 10); !errors.Is(err, ErrBadBER) {
		t.Errorf("negative BER: %v, want ErrBadBER", err)
	}
	if _, err := FrameFailureProb(1, 10); !errors.Is(err, ErrBadBER) {
		t.Errorf("BER=1: %v, want ErrBadBER", err)
	}
	if _, err := FrameFailureProb(0.1, 0); !errors.Is(err, ErrBadBits) {
		t.Errorf("zero bits: %v, want ErrBadBits", err)
	}
}

// Property: failure probability is monotone in both BER and frame size, and
// always within [0, 1).
func TestFrameFailureProbMonotoneProperty(t *testing.T) {
	f := func(berRaw uint16, bits1, bits2 uint16) bool {
		ber := float64(berRaw) / (1 << 17) // [0, 0.5)
		b1, b2 := int(bits1)+1, int(bits2)+1
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		p1, err1 := FrameFailureProb(ber, b1)
		p2, err2 := FrameFailureProb(ber, b2)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1 >= 0 && p2 <= 1 && p1 <= p2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBERInjectorRate(t *testing.T) {
	// At BER 1e-4 and 1000-bit frames, p ≈ 0.0952.  Check the empirical
	// rate over many draws.
	inj, err := NewBERInjector(1e-4, 99)
	if err != nil {
		t.Fatalf("NewBERInjector: %v", err)
	}
	const n = 200000
	for i := 0; i < n; i++ {
		inj.Corrupts(1000)
	}
	s := inj.Stats()
	if s.Transmissions != n {
		t.Fatalf("Transmissions = %d, want %d", s.Transmissions, n)
	}
	want, _ := FrameFailureProb(1e-4, 1000)
	got := s.Rate()
	if math.Abs(got-want) > 0.005 {
		t.Errorf("observed rate %g, want ~%g", got, want)
	}
}

func TestBERInjectorZeroBER(t *testing.T) {
	inj, err := NewBERInjector(0, 1)
	if err != nil {
		t.Fatalf("NewBERInjector: %v", err)
	}
	for i := 0; i < 1000; i++ {
		if inj.Corrupts(2032) {
			t.Fatal("zero-BER injector corrupted a frame")
		}
	}
}

func TestBERInjectorRejectsBadBER(t *testing.T) {
	if _, err := NewBERInjector(1.5, 1); !errors.Is(err, ErrBadBER) {
		t.Errorf("NewBERInjector(1.5) = %v, want ErrBadBER", err)
	}
}

func TestBERInjectorDeterministic(t *testing.T) {
	a, _ := NewBERInjector(1e-3, 7)
	b, _ := NewBERInjector(1e-3, 7)
	for i := 0; i < 10000; i++ {
		if a.Corrupts(500) != b.Corrupts(500) {
			t.Fatalf("same-seed injectors diverged at draw %d", i)
		}
	}
}

func TestBERInjectorNonPositiveBits(t *testing.T) {
	inj, _ := NewBERInjector(0.9, 1)
	if inj.Corrupts(0) || inj.Corrupts(-3) {
		t.Error("non-positive frame sizes must never corrupt")
	}
	if s := inj.Stats(); s.Transmissions != 0 {
		t.Errorf("non-positive sizes counted as transmissions: %+v", s)
	}
}

func TestGilbertElliottDegeneratesToBER(t *testing.T) {
	ge, err := NewGilbertElliott(GilbertElliottConfig{
		BERGood: 1e-4, BERBad: 0.5, PGoodToBad: 0, PBadToGood: 1,
	}, 99)
	if err != nil {
		t.Fatalf("NewGilbertElliott: %v", err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		ge.Corrupts(1000)
	}
	want, _ := FrameFailureProb(1e-4, 1000)
	if got := ge.Stats().Rate(); math.Abs(got-want) > 0.01 {
		t.Errorf("degenerate GE rate = %g, want ~%g", got, want)
	}
	if ge.InBadState() {
		t.Error("GE with PGoodToBad=0 entered bad state")
	}
}

func TestGilbertElliottBurstsRaiseRate(t *testing.T) {
	cfg := GilbertElliottConfig{BERGood: 1e-6, BERBad: 1e-2, PGoodToBad: 0.05, PBadToGood: 0.2}
	ge, err := NewGilbertElliott(cfg, 5)
	if err != nil {
		t.Fatalf("NewGilbertElliott: %v", err)
	}
	base, _ := NewBERInjector(1e-6, 5)
	const n = 100000
	for i := 0; i < n; i++ {
		ge.Corrupts(1000)
		base.Corrupts(1000)
	}
	if ge.Stats().Rate() <= base.Stats().Rate() {
		t.Errorf("burst model rate %g not above baseline %g",
			ge.Stats().Rate(), base.Stats().Rate())
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	if _, err := NewGilbertElliott(GilbertElliottConfig{BERGood: -1}, 1); err == nil {
		t.Error("negative BERGood accepted")
	}
	if _, err := NewGilbertElliott(GilbertElliottConfig{PGoodToBad: 2}, 1); err == nil {
		t.Error("transition probability 2 accepted")
	}
}

func TestNoneInjector(t *testing.T) {
	var n None
	for i := 0; i < 50; i++ {
		if n.Corrupts(10000) {
			t.Fatal("None corrupted a frame")
		}
	}
	if s := n.Stats(); s.Transmissions != 50 || s.Faults != 0 {
		t.Errorf("Stats() = %+v, want 50/0", s)
	}
}

func TestStatsRateEmpty(t *testing.T) {
	var s Stats
	if s.Rate() != 0 {
		t.Errorf("empty Stats.Rate() = %g, want 0", s.Rate())
	}
}
