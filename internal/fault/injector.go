package fault

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Common errors.
var (
	// ErrBadBER is returned for bit error rates outside [0, 1).
	ErrBadBER = errors.New("fault: BER must be in [0, 1)")
	// ErrBadBits is returned for non-positive frame sizes.
	ErrBadBits = errors.New("fault: frame size must be positive")
)

// FrameFailureProb returns the probability that a frame of `bits` bits is
// corrupted at bit error rate `ber`:
//
//	p = 1 − (1 − BER)^bits.
//
// Computed as -expm1(bits * log1p(-ber)) for numerical stability at the very
// small BERs (1e-7, 1e-9) the paper uses.
func FrameFailureProb(ber float64, bits int) (float64, error) {
	if ber < 0 || ber >= 1 {
		return 0, fmt.Errorf("%w: %g", ErrBadBER, ber)
	}
	if bits <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadBits, bits)
	}
	if ber == 0 {
		return 0, nil
	}
	return -math.Expm1(float64(bits) * math.Log1p(-ber)), nil
}

// probCacheMaxBits bounds the frame sizes memoized by probCache; larger
// frames fall back to computing the probability directly.
const probCacheMaxBits = 1 << 14

// probCache memoizes FrameFailureProb for one fixed BER, indexed densely by
// frame size.  A workload uses only a handful of distinct wire sizes, so the
// expm1/log1p evaluation — which dominated the simulation hot path — runs
// once per size instead of once per transmission.  The cached value is the
// exact float FrameFailureProb returns, so the injector's Bernoulli draw
// stream is bit-identical with and without the cache.
type probCache struct {
	p    []float64
	seen []bool
}

func (c *probCache) prob(ber float64, bits int) (float64, error) {
	if bits >= probCacheMaxBits {
		return FrameFailureProb(ber, bits)
	}
	if bits >= len(c.p) {
		np := make([]float64, bits+1)
		ns := make([]bool, bits+1)
		copy(np, c.p)
		copy(ns, c.seen)
		c.p, c.seen = np, ns
	}
	if c.seen[bits] {
		return c.p[bits], nil
	}
	p, err := FrameFailureProb(ber, bits)
	if err != nil {
		return 0, err
	}
	c.p[bits] = p
	c.seen[bits] = true
	return p, nil
}

// Injector decides, per transmission, whether a transient fault corrupts the
// frame.  Implementations must be deterministic given their seed.
type Injector interface {
	// Corrupts reports whether a transmission of `bits` bits is corrupted.
	Corrupts(bits int) bool
	// Stats returns cumulative injection statistics.
	Stats() Stats
}

// Reseeder is implemented by injectors that can be returned to their
// just-constructed state under a new seed without reallocating.  After
// Reseed(s) the injector's draw stream and statistics are
// indistinguishable from a freshly constructed injector with the same
// configuration and seed s; memoized failure-probability caches are
// retained, which is exactly why batched replica runs prefer reseeding
// an existing injector over building a new one per replica.
type Reseeder interface {
	Reseed(seed uint64)
}

// Stats summarizes an injector's history.
type Stats struct {
	// Transmissions is the total number of transmissions examined.
	Transmissions int64
	// Faults is the number of corrupted transmissions.
	Faults int64
}

// Rate returns the observed fault rate, or 0 for an empty history.
func (s Stats) Rate() float64 {
	if s.Transmissions == 0 {
		return 0
	}
	return float64(s.Faults) / float64(s.Transmissions)
}

// BERInjector injects independent transient faults with the paper's
// per-frame probability 1-(1-BER)^bits.
type BERInjector struct {
	mu    sync.Mutex
	ber   float64
	rng   *RNG
	stats Stats
	cache probCache
}

var _ Injector = (*BERInjector)(nil)

// NewBERInjector returns an injector for the given bit error rate and seed.
func NewBERInjector(ber float64, seed uint64) (*BERInjector, error) {
	if ber < 0 || ber >= 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadBER, ber)
	}
	return &BERInjector{ber: ber, rng: NewRNG(seed)}, nil
}

// Corrupts implements Injector.
func (b *BERInjector) Corrupts(bits int) bool {
	if bits <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p, err := b.cache.prob(b.ber, bits)
	if err != nil {
		return false
	}
	b.stats.Transmissions++
	hit := b.rng.Bernoulli(p)
	if hit {
		b.stats.Faults++
	}
	return hit
}

// Stats implements Injector.
func (b *BERInjector) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// BER returns the configured bit error rate.
func (b *BERInjector) BER() float64 { return b.ber }

// Reseed implements Reseeder: statistics reset, RNG re-seeded in place,
// probability cache retained (cached values are the exact floats
// FrameFailureProb returns, so retention cannot perturb the draws).
func (b *BERInjector) Reseed(seed uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rng.Seed(seed)
	b.stats = Stats{}
}

var _ Reseeder = (*BERInjector)(nil)

// GilbertElliott is a two-state burst-fault injector: in the Good state bits
// fail at BERGood, in the Bad state at BERBad; the channel flips between
// states with the given transition probabilities evaluated once per
// transmission.  With PGoodToBad=0 it degenerates to a BERInjector at
// BERGood.
type GilbertElliott struct {
	mu    sync.Mutex
	cfg   GilbertElliottConfig
	bad   bool
	rng   *RNG
	stats Stats
	// cacheGood and cacheBad memoize the per-state failure probabilities.
	cacheGood probCache
	cacheBad  probCache
}

var _ Injector = (*GilbertElliott)(nil)

// GilbertElliottConfig parameterizes the two-state model.
type GilbertElliottConfig struct {
	// BERGood and BERBad are the per-bit error rates in each state.
	BERGood, BERBad float64
	// PGoodToBad and PBadToGood are the per-transmission state transition
	// probabilities.
	PGoodToBad, PBadToGood float64
}

// NewGilbertElliott returns a burst injector with the given configuration and
// seed.
func NewGilbertElliott(cfg GilbertElliottConfig, seed uint64) (*GilbertElliott, error) {
	if err := checkGEConfig(cfg); err != nil {
		return nil, err
	}
	return &GilbertElliott{cfg: cfg, rng: NewRNG(seed)}, nil
}

// Corrupts implements Injector.
func (g *GilbertElliott) Corrupts(bits int) bool {
	if bits <= 0 {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// State transition first, then draw with the new state's BER.
	if g.bad {
		if g.rng.Bernoulli(g.cfg.PBadToGood) {
			g.bad = false
		}
	} else if g.rng.Bernoulli(g.cfg.PGoodToBad) {
		g.bad = true
	}
	ber, cache := g.cfg.BERGood, &g.cacheGood
	if g.bad {
		ber, cache = g.cfg.BERBad, &g.cacheBad
	}
	p, err := cache.prob(ber, bits)
	if err != nil {
		return false
	}
	g.stats.Transmissions++
	hit := g.rng.Bernoulli(p)
	if hit {
		g.stats.Faults++
	}
	return hit
}

// Stats implements Injector.
func (g *GilbertElliott) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// InBadState reports whether the channel is currently in the Bad state.
func (g *GilbertElliott) InBadState() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.bad
}

// Reseed implements Reseeder: back to the Good state with fresh
// statistics and an in-place re-seeded RNG; both per-state probability
// caches are retained.
func (g *GilbertElliott) Reseed(seed uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rng.Seed(seed)
	g.bad = false
	g.stats = Stats{}
}

var _ Reseeder = (*GilbertElliott)(nil)

// None is an injector that never corrupts anything (a fault-free bus).
type None struct {
	mu    sync.Mutex
	stats Stats
}

var _ Injector = (*None)(nil)

// Corrupts implements Injector.
func (n *None) Corrupts(bits int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Transmissions++
	return false
}

// Stats implements Injector.
func (n *None) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Reseed implements Reseeder.  A fault-free bus has no random state;
// only the transmission counter is cleared.
func (n *None) Reseed(uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}

var _ Reseeder = (*None)(nil)
