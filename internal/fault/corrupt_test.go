package fault

import (
	"bytes"
	"math/bits"
	"testing"
)

func popcount(buf []byte) int {
	n := 0
	for _, b := range buf {
		n += bits.OnesCount8(b)
	}
	return n
}

func TestFlipBitsFlipsExactly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		buf := make([]byte, 16)
		FlipBits(buf, NewRNG(uint64(n)), n)
		if got := popcount(buf); got != n {
			t.Fatalf("n=%d: %d bits set, want %d (flips must be distinct)", n, got, n)
		}
	}
}

func TestFlipBitsDeterministic(t *testing.T) {
	a := make([]byte, 10)
	b := make([]byte, 10)
	FlipBits(a, NewRNG(42), 3)
	FlipBits(b, NewRNG(42), 3)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must flip the same bits")
	}
}

func TestFlipBitsClampsToBufferSize(t *testing.T) {
	buf := []byte{0}
	FlipBits(buf, NewRNG(1), 100)
	if buf[0] != 0xFF {
		t.Fatalf("flipping more bits than exist must saturate: got %08b", buf[0])
	}
}

func TestFlipBitsEmptyAndZero(t *testing.T) {
	FlipBits(nil, NewRNG(1), 3) // must not panic
	buf := []byte{0xAA}
	FlipBits(buf, NewRNG(1), 0)
	if buf[0] != 0xAA {
		t.Fatal("n=0 must be a no-op")
	}
}
