// Package fault implements the transient-fault models used by the paper's
// evaluation.
//
// The paper's fault model is derived from the IEC 61508 functional-safety
// standard: transmissions fail transiently (radiation, interference,
// temperature variation) and the probability that a frame of W bits is
// corrupted at a given bit error rate is
//
//	p = 1 − (1 − BER)^W.
//
// This package substitutes the Vector/Elektrobit fault-injection tooling of
// the paper's testbed with a deterministic, seeded injector so experiments
// are exactly reproducible.  An optional Gilbert–Elliott two-state model
// captures bursty interference.
package fault

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**), seeded via splitmix64.  It is NOT safe for concurrent use;
// give each injector its own instance.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator in place, exactly as NewRNG(seed)
// would: the draw stream after Seed(s) is identical to a fresh
// generator's.  In-place reseeding is what lets batched replica runs
// reuse one generator per state instead of allocating one per replica.
//
//perf:hotpath
func (r *RNG) Seed(seed uint64) {
	// splitmix64 seeding, as recommended by the xoshiro authors.
	x := seed
	for i := range r.s {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		r.s[i] = z ^ z>>31
	}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("fault: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Fork returns an independent generator derived from this one.  Use it to
// give subsystems their own streams without correlating their draws.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 {
	return x<<k | x>>(64-k)
}
