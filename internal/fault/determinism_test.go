package fault

import (
	"math"
	"testing"

	"github.com/flexray-go/coefficient/internal/timebase"
)

// Seed-determinism regression tests: every injector kind must reproduce its
// exact fault stream from the seed alone.  The scenario engine and the
// byte-identical-trace guarantee both rest on this.

func TestBernoulliDeterministic(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 5000; i++ {
		p := float64(i%100) / 100
		if a.Bernoulli(p) != b.Bernoulli(p) {
			t.Fatalf("same-seed Bernoulli streams diverged at draw %d", i)
		}
	}
}

func TestGilbertElliottDeterministic(t *testing.T) {
	cfg := GilbertElliottConfig{BERGood: 1e-6, BERBad: 1e-2, PGoodToBad: 0.05, PBadToGood: 0.2}
	a, err := NewGilbertElliott(cfg, 77)
	if err != nil {
		t.Fatalf("NewGilbertElliott: %v", err)
	}
	b, _ := NewGilbertElliott(cfg, 77)
	for i := 0; i < 20000; i++ {
		if a.Corrupts(700) != b.Corrupts(700) {
			t.Fatalf("same-seed Gilbert–Elliott streams diverged at draw %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("same-seed stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func profileFixture(t *testing.T, seed uint64) *Profile {
	t.Helper()
	p, err := NewProfile(1e-7,
		[]BERPhase{
			{Start: 10_000, End: 20_000, From: 1e-7, To: 1e-4},  // ramp
			{Start: 40_000, End: OpenEnd, From: 1e-4, To: 1e-4}, // step
		},
		[]BurstWindow{
			{Start: 25_000, End: 30_000, GE: GilbertElliottConfig{
				BERGood: 1e-7, BERBad: 1e-2, PGoodToBad: 0.2, PBadToGood: 0.4}},
		},
		seed)
	if err != nil {
		t.Fatalf("NewProfile: %v", err)
	}
	return p
}

func TestProfileDeterministic(t *testing.T) {
	a, b := profileFixture(t, 31), profileFixture(t, 31)
	for at := timebase.Macrotick(0); at < 60_000; at += 13 {
		if a.CorruptsAt(900, at) != b.CorruptsAt(900, at) {
			t.Fatalf("same-seed time-varying streams diverged at t=%d", at)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("same-seed stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
	// A different seed must not replay the stream.
	c := profileFixture(t, 32)
	same := 0
	d := profileFixture(t, 31)
	const draws = 4000
	for i := 0; i < draws; i++ {
		at := timebase.Macrotick(41_000 + i) // inside the 1e-4 step
		if c.CorruptsAt(5000, at) == d.CorruptsAt(5000, at) {
			same++
		}
	}
	if same == draws {
		t.Error("different-seed profiles produced identical fault streams")
	}
}

func TestProfileBERAt(t *testing.T) {
	p := profileFixture(t, 1)
	tests := []struct {
		at   timebase.Macrotick
		want float64
	}{
		{0, 1e-7},                        // base
		{9_999, 1e-7},                    // base, just before the ramp
		{10_000, 1e-7},                   // ramp start
		{15_000, 1e-7 + (1e-4-1e-7)*0.5}, // ramp midpoint
		{20_000, 1e-7},                   // ramp end is exclusive: back to base
		{39_999, 1e-7},                   // between windows
		{40_000, 1e-4},                   // step
		{1 << 40, 1e-4},                  // open-ended step holds forever
	}
	for _, tt := range tests {
		got := p.BERAt(tt.at)
		if math.Abs(got-tt.want) > 1e-12*tt.want {
			t.Errorf("BERAt(%d) = %g, want %g", tt.at, got, tt.want)
		}
	}
}

func TestProfileStepRaisesObservedRate(t *testing.T) {
	p := profileFixture(t, 5)
	count := func(from, to timebase.Macrotick) (faults, total int) {
		for at := from; at < to; at++ {
			total++
			if p.CorruptsAt(2000, at) {
				faults++
			}
		}
		return
	}
	baseFaults, baseTotal := count(0, 9_000)
	stepFaults, stepTotal := count(41_000, 50_000)
	baseRate := float64(baseFaults) / float64(baseTotal)
	stepRate := float64(stepFaults) / float64(stepTotal)
	// p(base) ≈ 2e-4, p(step) ≈ 0.18: the step must dominate clearly.
	if stepRate <= baseRate+0.05 {
		t.Errorf("step rate %g not clearly above base rate %g", stepRate, baseRate)
	}
}

func TestProfileValidation(t *testing.T) {
	if _, err := NewProfile(1.5, nil, nil, 1); err == nil {
		t.Error("base BER 1.5 accepted")
	}
	if _, err := NewProfile(0, []BERPhase{{Start: -1, End: 5, From: 0, To: 0}}, nil, 1); err == nil {
		t.Error("negative phase start accepted")
	}
	if _, err := NewProfile(0, []BERPhase{{Start: 5, End: 5, From: 0, To: 0}}, nil, 1); err == nil {
		t.Error("empty phase accepted")
	}
	if _, err := NewProfile(0, []BERPhase{
		{Start: 0, End: 10, From: 0, To: 0},
		{Start: 5, End: 15, From: 0, To: 0},
	}, nil, 1); err == nil {
		t.Error("overlapping phases accepted")
	}
	if _, err := NewProfile(0, nil, []BurstWindow{
		{Start: 0, End: 10},
		{Start: 5, End: 15},
	}, 1); err == nil {
		t.Error("overlapping bursts accepted")
	}
	if _, err := NewProfile(0, nil, []BurstWindow{
		{Start: 0, End: 10, GE: GilbertElliottConfig{PGoodToBad: 3}},
	}, 1); err == nil {
		t.Error("burst with probability 3 accepted")
	}
}
