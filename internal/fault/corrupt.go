package fault

// FlipBits flips n distinct random bits of buf in place, modelling the
// physical effect of a transient fault on the wire image: the simulator
// uses it to corrupt a real encoded frame so the receiver's CRC check —
// not injector fiat — decides whether the corruption is detected.  Flips
// at most len(buf)*8 bits; a nil or empty buf is a no-op.
func FlipBits(buf []byte, rng *RNG, n int) {
	total := len(buf) * 8
	if total == 0 || n <= 0 {
		return
	}
	if n > total {
		n = total
	}
	flipped := make(map[int]bool, n)
	for len(flipped) < n {
		bit := rng.Intn(total)
		if flipped[bit] {
			continue
		}
		flipped[bit] = true
		buf[bit/8] ^= 1 << uint(bit%8)
	}
}
