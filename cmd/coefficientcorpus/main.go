// Command coefficientcorpus generates the scenario corpus, runs it
// differentially under CoEfficient, FSPEC and adaptive CoEfficient,
// diffs the outcomes against the golden store, and shrinks failing
// scenarios into committed regression cases.
//
// Usage:
//
//	coefficientcorpus generate -seed 1 -count 200 -quick -out cases.json
//	coefficientcorpus run -seed 1 -count 200 -quick -verify-parallel 8
//	coefficientcorpus diff -seed 1 -count 200 -quick -golden results/corpus/golden-quick.json [-update]
//	coefficientcorpus minimize -case failing.json -invariant accounting -out minimal.json
//
// Exit codes: 0 on success, 1 on invariant violations or golden diffs,
// 2 on usage or execution errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"github.com/flexray-go/coefficient/internal/corpus"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code, err := run(ctx, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "coefficientcorpus:", err)
	}
	os.Exit(code)
}

func run(ctx context.Context, args []string) (int, error) {
	if len(args) == 0 {
		return 2, fmt.Errorf("usage: coefficientcorpus generate|run|diff|minimize [flags]")
	}
	switch args[0] {
	case "generate":
		return runGenerate(args[1:])
	case "run":
		return runRun(ctx, args[1:])
	case "diff":
		return runDiff(ctx, args[1:])
	case "minimize":
		return runMinimize(ctx, args[1:])
	default:
		return 2, fmt.Errorf("unknown subcommand %q (want generate, run, diff or minimize)", args[0])
	}
}

// genFlags registers the shared generation flags.
func genFlags(fs *flag.FlagSet) (*uint64, *int, *bool) {
	seed := fs.Uint64("seed", 1, "corpus seed: same seed and count give byte-identical cases")
	count := fs.Int("count", 200, "number of cases to generate")
	quick := fs.Bool("quick", false, "80 ms horizons instead of 300 ms, for CI-sized sweeps")
	return seed, count, quick
}

func parse(fs *flag.FlagSet, args []string) error {
	fs.SetOutput(os.Stderr)
	return fs.Parse(args)
}

func runGenerate(args []string) (int, error) {
	fs := flag.NewFlagSet("coefficientcorpus generate", flag.ContinueOnError)
	seed, count, quick := genFlags(fs)
	out := fs.String("out", "", "write the case list to this file instead of stdout")
	if err := parse(fs, args); err != nil {
		return 2, nil
	}
	cases, err := corpus.Generate(corpus.GenOptions{Seed: *seed, Count: *count, Quick: *quick})
	if err != nil {
		return 2, err
	}
	emit := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(cases)
	}
	if *out != "" {
		if err := writeFile(*out, emit); err != nil {
			return 2, err
		}
		fmt.Printf("generated %d cases (seed %d, quick %v) -> %s\n", len(cases), *seed, *quick, *out)
		return 0, nil
	}
	if err := emit(os.Stdout); err != nil {
		return 2, err
	}
	return 0, nil
}

func runRun(ctx context.Context, args []string) (int, error) {
	fs := flag.NewFlagSet("coefficientcorpus run", flag.ContinueOnError)
	seed, count, quick := genFlags(fs)
	parallel := fs.Int("parallel", 0, "worker count: 0 = all cores, 1 = serial; outcomes are identical for every value")
	verify := fs.Int("verify-parallel", 0, "also run serially and fail unless outcomes are byte-identical at this worker count")
	out := fs.String("out", "", "write the result set to this file")
	if err := parse(fs, args); err != nil {
		return 2, nil
	}
	cases, err := corpus.Generate(corpus.GenOptions{Seed: *seed, Count: *count, Quick: *quick})
	if err != nil {
		return 2, err
	}
	if *verify > 0 {
		if err := corpus.VerifyParallel(cases, *verify, ctx); err != nil {
			return 1, err
		}
		fmt.Printf("parallel-identity: %d cases byte-identical at 1 and %d workers\n", len(cases), *verify)
	}
	results, err := corpus.Run(cases, corpus.RunOptions{Parallel: *parallel, Ctx: ctx})
	if err != nil {
		return 2, err
	}
	if *out != "" {
		store := corpus.NewStore(corpus.GenOptions{Seed: *seed, Count: *count, Quick: *quick}, results)
		if err := store.Save(*out); err != nil {
			return 2, err
		}
	}
	violations := corpus.CheckAll(cases, results)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "VIOLATION:", v)
	}
	if len(violations) > 0 {
		return 1, fmt.Errorf("%d invariant violations across %d cases", len(violations), len(cases))
	}
	fmt.Printf("corpus green: %d cases x %d schedulers, all invariants hold\n",
		len(cases), len(corpus.Schedulers))
	return 0, nil
}

func runDiff(ctx context.Context, args []string) (int, error) {
	fs := flag.NewFlagSet("coefficientcorpus diff", flag.ContinueOnError)
	seed, count, quick := genFlags(fs)
	parallel := fs.Int("parallel", 0, "worker count")
	golden := fs.String("golden", "results/corpus/golden-quick.json", "golden store to diff against")
	update := fs.Bool("update", false, "rewrite the golden store from this run instead of diffing")
	if err := parse(fs, args); err != nil {
		return 2, nil
	}
	opts := corpus.GenOptions{Seed: *seed, Count: *count, Quick: *quick}
	cases, err := corpus.Generate(opts)
	if err != nil {
		return 2, err
	}
	results, err := corpus.Run(cases, corpus.RunOptions{Parallel: *parallel, Ctx: ctx})
	if err != nil {
		return 2, err
	}
	fresh := corpus.NewStore(opts, results)
	if *update {
		if err := fresh.Save(*golden); err != nil {
			return 2, err
		}
		fmt.Printf("golden store updated: %s (%d cases)\n", *golden, len(results))
		return 0, nil
	}
	stored, err := corpus.LoadStore(*golden)
	if err != nil {
		return 2, fmt.Errorf("%w (run with -update to create it)", err)
	}
	lines, err := stored.Diff(fresh)
	if err != nil {
		return 2, err
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(lines) > 0 {
		return 1, fmt.Errorf("%d differences against %s", len(lines), *golden)
	}
	fmt.Printf("golden store matches: %d cases identical\n", len(results))
	return 0, nil
}

func runMinimize(ctx context.Context, args []string) (int, error) {
	fs := flag.NewFlagSet("coefficientcorpus minimize", flag.ContinueOnError)
	caseFile := fs.String("case", "", "JSON file holding the failing case (single case or a list; the first failing case is used)")
	invariant := fs.String("invariant", "", "invariant ID to preserve while shrinking (empty = any violation)")
	parallel := fs.Int("parallel", 0, "worker count")
	out := fs.String("out", "", "write the minimized case to this file instead of stdout")
	if err := parse(fs, args); err != nil {
		return 2, nil
	}
	if *caseFile == "" {
		return 2, fmt.Errorf("minimize: -case is required")
	}
	cases, err := loadCases(*caseFile)
	if err != nil {
		return 2, err
	}
	ropts := corpus.RunOptions{Parallel: *parallel, Ctx: ctx}
	for _, c := range cases {
		min, err := corpus.Minimize(c, *invariant, ropts)
		if err != nil {
			continue // this case does not fail; try the next
		}
		data, err := min.Canonical()
		if err != nil {
			return 2, err
		}
		if *out != "" {
			if err := writeFile(*out, func(w io.Writer) error {
				_, werr := w.Write(append(data, '\n'))
				return werr
			}); err != nil {
				return 2, err
			}
			fmt.Printf("minimized %s -> %s\n", c.Name, *out)
			return 0, nil
		}
		fmt.Println(string(data))
		return 0, nil
	}
	return 1, fmt.Errorf("no case in %s fails invariant %q", *caseFile, *invariant)
}

// loadCases reads either a single case document or a JSON list of cases.
func loadCases(path string) ([]*corpus.Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []*corpus.Case
	if err := json.Unmarshal(data, &list); err == nil {
		return list, nil
	}
	c, err := corpus.ParseCase(data)
	if err != nil {
		return nil, err
	}
	return []*corpus.Case{c}, nil
}

// writeFile creates path, hands it to write, and propagates the Close
// error if write itself succeeded — the final flush of buffered data
// happens in Close, so ignoring it hides short writes on a full disk.
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return write(f)
}
