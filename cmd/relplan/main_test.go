package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	outCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, rerr := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if rerr != nil {
				break
			}
		}
		outCh <- string(buf)
	}()
	ferr := fn()
	if err := w.Close(); err != nil {
		t.Fatalf("close pipe: %v", err)
	}
	return <-outCh, ferr
}

func TestPlanBBW(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-workload", "bbw", "-ber", "1e-7", "-goal", "0.999"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"differentiated plan", "BBW-01", "achieved success probability"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanUniformFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-workload", "acc", "-ber", "1e-6", "-goal", "0.999", "-uniform"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "uniform plan") {
		t.Errorf("output missing uniform marker:\n%s", out)
	}
}

func TestPlanSILDefault(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-workload", "bbw", "-ber", "1e-9", "-sil", "2"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "goal=0.999999999") {
		t.Errorf("SIL-derived goal missing:\n%s", out)
	}
}

func TestPlanBadFlags(t *testing.T) {
	if err := run([]string{"-workload", "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-unit", "bananas"}); err == nil {
		t.Error("bad unit accepted")
	}
	if err := run([]string{"-workload", "bbw", "-sil", "9"}); err == nil {
		t.Error("bad SIL accepted")
	}
}
