// Command relplan prints the differentiated retransmission plan (the
// paper's Section III-E analysis) for a workload, bit error rate and
// reliability goal: which messages get how many retransmissions, and the
// resulting Theorem 1 success probability.
//
// Usage:
//
//	relplan -workload bbw -ber 1e-7 -goal 0.999
//	relplan -workload bbw -ber 1e-7 -sil 3 -uniform
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	coefficient "github.com/flexray-go/coefficient"
	"github.com/flexray-go/coefficient/internal/frame"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "relplan:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("relplan", flag.ContinueOnError)
	var (
		kind    = fs.String("workload", "bbw", "workload: bbw, acc or synthetic")
		msgs    = fs.Int("messages", 40, "synthetic: number of messages")
		seed    = fs.Uint64("seed", 1, "synthetic seed")
		ber     = fs.Float64("ber", 1e-7, "bit error rate")
		goal    = fs.Float64("goal", 0, "reliability goal ρ in (0,1); 0 derives from -sil")
		sil     = fs.Int("sil", 3, "IEC 61508 SIL level used when -goal is 0")
		unitStr = fs.String("unit", "1s", "time unit u of Theorem 1")
		uniform = fs.Bool("uniform", false, "use the uniform plan instead of differentiated")
		maxRetx = fs.Int("max-retx", 0, "per-message retransmission cap (0: default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	unit, err := time.ParseDuration(*unitStr)
	if err != nil {
		return fmt.Errorf("bad -unit: %w", err)
	}

	var set coefficient.MessageSet
	switch *kind {
	case "bbw":
		set = coefficient.BBW()
	case "acc":
		set = coefficient.ACC()
	case "synthetic":
		set, err = coefficient.Synthetic(coefficient.SyntheticOptions{Messages: *msgs, Seed: *seed})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown workload %q", *kind)
	}

	rho := *goal
	if rho == 0 {
		if *sil < 1 || *sil > 4 {
			return fmt.Errorf("bad -sil %d", *sil)
		}
		rho = coefficient.SIL(*sil).Goal(unit)
	}

	rmsgs := make([]coefficient.ReliabilityMessage, len(set.Messages))
	for i, m := range set.Messages {
		period := m.Period
		if period <= 0 {
			period = m.Deadline
		}
		rmsgs[i] = coefficient.ReliabilityMessage{
			Name:   m.Name,
			Bits:   frame.WireBits(m.Bytes()),
			Period: period,
		}
	}

	planFn := coefficient.PlanDifferentiated
	planName := "differentiated"
	if *uniform {
		planFn = coefficient.PlanUniform
		planName = "uniform"
	}
	plan, err := planFn(rmsgs, *ber, unit, rho, *maxRetx)
	if err != nil {
		return err
	}

	fmt.Printf("# %s plan for %s: BER=%g, goal=%.12f over %v\n", planName, set.Name, *ber, rho, unit)
	fmt.Printf("# achieved success probability: %.9f\n", plan.Success)
	fmt.Printf("# total retransmissions: %d configured, %.1f scheduled per %v\n",
		plan.Total(), plan.TotalPerUnit, unit)
	fmt.Printf("%-12s  %-10s  %-12s  %-5s\n", "message", "wire bits", "failure prob", "k")
	for i, rm := range rmsgs {
		p, err := coefficient.FrameFailureProb(*ber, rm.Bits)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s  %-10d  %-12.3e  %-5d\n", rm.Name, rm.Bits, p, plan.Retransmissions[i])
	}
	return nil
}
