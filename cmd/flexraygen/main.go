// Command flexraygen generates reproducible FlexRay workloads: the paper's
// BBW and ACC sets, synthetic periodic sets, and SAE-derived aperiodic
// sets, printed as JSON or a text table.
//
// Usage:
//
//	flexraygen -workload bbw
//	flexraygen -workload synthetic -messages 40 -seed 7 -format json
//	flexraygen -workload sae -first-id 81 -count 30
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	coefficient "github.com/flexray-go/coefficient"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flexraygen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flexraygen", flag.ContinueOnError)
	var (
		kind     = fs.String("workload", "bbw", "workload to generate: bbw, acc, synthetic or sae")
		messages = fs.Int("messages", 40, "synthetic: number of messages")
		count    = fs.Int("count", 30, "sae: number of aperiodic messages")
		firstID  = fs.Int("first-id", 81, "sae: first dynamic frame ID")
		seed     = fs.Uint64("seed", 1, "generator seed")
		format   = fs.String("format", "table", "output format: table or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		set coefficient.MessageSet
		err error
	)
	switch *kind {
	case "bbw":
		set = coefficient.BBW()
	case "acc":
		set = coefficient.ACC()
	case "synthetic":
		set, err = coefficient.Synthetic(coefficient.SyntheticOptions{
			Messages: *messages,
			Seed:     *seed,
		})
	case "sae":
		set, err = coefficient.SAEAperiodic(coefficient.SAEAperiodicOptions{
			FirstID: *firstID,
			Count:   *count,
			Seed:    *seed,
		})
	default:
		return fmt.Errorf("unknown workload %q", *kind)
	}
	if err != nil {
		return err
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(set)
	case "table":
		printTable(set)
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func printTable(set coefficient.MessageSet) {
	fmt.Printf("# workload %s: %d messages, %d nodes, %d bits total\n",
		set.Name, len(set.Messages), set.Nodes(), set.TotalBits())
	fmt.Printf("%-4s  %-12s  %-4s  %-9s  %-10s  %-10s  %-10s  %-5s\n",
		"id", "name", "node", "kind", "period", "offset", "deadline", "bits")
	for _, m := range set.Messages {
		fmt.Printf("%-4d  %-12s  %-4d  %-9s  %-10v  %-10v  %-10v  %-5d\n",
			m.ID, m.Name, m.Node, m.Kind, m.Period, m.Offset, m.Deadline, m.Bits)
	}
}
