package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	outCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, rerr := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if rerr != nil {
				break
			}
		}
		outCh <- string(buf)
	}()
	ferr := fn()
	if err := w.Close(); err != nil {
		t.Fatalf("close pipe: %v", err)
	}
	return <-outCh, ferr
}

func TestGenerateBBWTable(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-workload", "bbw"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "BBW-01") || !strings.Contains(out, "20 messages") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestGenerateSyntheticJSON(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-workload", "synthetic", "-messages", "7", "-format", "json"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var decoded struct {
		Name     string `json:"name"`
		Messages []struct {
			ID int `json:"id"`
		} `json:"messages"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(decoded.Messages) != 7 {
		t.Errorf("generated %d messages, want 7", len(decoded.Messages))
	}
}

func TestGenerateSAE(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-workload", "sae", "-count", "3", "-first-id", "121"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "121") || !strings.Contains(out, "aperiodic") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRejectsBadWorkloadAndFormat(t *testing.T) {
	if err := run([]string{"-workload", "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-format", "yaml"}); err == nil {
		t.Error("unknown format accepted")
	}
}
