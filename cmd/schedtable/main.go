// Command schedtable prints the FlexRay static schedule table (base cycle,
// repetition, feasibility per message) for a workload under one of the
// paper's cycle configurations.
//
// Usage:
//
//	schedtable -workload bbw -cycle latency -minislots 50
//	schedtable -workload synthetic -messages 40 -cycle runningtime -slots 80
package main

import (
	"flag"
	"fmt"
	"os"

	coefficient "github.com/flexray-go/coefficient"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "schedtable:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("schedtable", flag.ContinueOnError)
	var (
		kind      = fs.String("workload", "bbw", "workload: bbw, acc or synthetic")
		messages  = fs.Int("messages", 20, "synthetic: number of messages")
		seed      = fs.Uint64("seed", 1, "synthetic seed")
		cycle     = fs.String("cycle", "latency", "cycle configuration: latency (1ms) or runningtime (5ms)")
		slots     = fs.Int("slots", 0, "static slot count (default: 30 for latency, 80 for runningtime)")
		minislots = fs.Int("minislots", 50, "latency cycle: dynamic segment minislots")
		wcrt      = fs.Bool("wcrt", false, "also print worst-case response times per message")
		synth     = fs.Bool("synthesize", false, "also print the slot-multiplexed (minimal-width) schedule")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		set coefficient.MessageSet
		err error
	)
	switch *kind {
	case "bbw":
		set = coefficient.BBW()
	case "acc":
		set = coefficient.ACC()
	case "synthetic":
		set, err = coefficient.Synthetic(coefficient.SyntheticOptions{Messages: *messages, Seed: *seed})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown workload %q", *kind)
	}

	var setup coefficient.ExperimentSetup
	switch *cycle {
	case "latency":
		n := *slots
		if n == 0 {
			n = 30
		}
		setup, err = coefficient.DeriveLatencySetup(set, n, *minislots)
	case "runningtime":
		n := *slots
		if n == 0 {
			n = 80
		}
		setup, err = coefficient.DeriveRunningTimeSetup(set, n)
	default:
		return fmt.Errorf("unknown cycle %q", *cycle)
	}
	if err != nil {
		return err
	}

	tbl, err := coefficient.BuildSchedule(set, setup.Config)
	if err != nil {
		return err
	}
	fmt.Printf("# %s on the %s cycle (%v, %d static slots of %v, bus %d Mbit/s)\n",
		set.Name, *cycle,
		setup.Config.CycleDuration(),
		setup.Config.StaticSlots,
		setup.Config.ToDuration(setup.Config.StaticSlotLen),
		setup.BitRate/1_000_000)
	fmt.Print(tbl.String())
	if !tbl.Feasible() {
		fmt.Printf("# WARNING: %d infeasible entries (streaming runs would miss deadlines)\n",
			len(tbl.Infeasible()))
	}
	if *synth {
		syn, err := coefficient.SynthesizeSchedule(set, setup.Config)
		if err != nil {
			return err
		}
		bound, err := coefficient.MinScheduleSlots(set, setup.Config)
		if err != nil {
			return err
		}
		fmt.Printf("\n# slot-multiplexed synthesis: %d slots used (lower bound %d, naive %d)\n",
			syn.SlotsUsed, bound, len(tbl.Entries))
		fmt.Printf("%-14s  %-5s  %-5s  %-4s\n", "message", "slot", "base", "rep")
		for _, a := range syn.Assignments {
			fmt.Printf("%-14s  %-5d  %-5d  %-4d\n",
				a.Message.Name, a.Slot, a.BaseCycle, a.Repetition)
		}
	}
	if *wcrt {
		results, err := coefficient.AnalyzeWCRT(set, setup.Config, setup.BitRate)
		if err != nil {
			return err
		}
		fmt.Printf("\n%-8s  %-14s  %-8s\n", "frame", "WCRT", "meets")
		for _, r := range results {
			w := r.WCRT.String()
			if r.WCRT < 0 {
				w = "unbounded"
			}
			fmt.Printf("%-8d  %-14s  %-8t\n", r.FrameID, w, r.MeetsDeadline)
		}
	}
	return nil
}
