package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	outCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, rerr := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if rerr != nil {
				break
			}
		}
		outCh <- string(buf)
	}()
	ferr := fn()
	if err := w.Close(); err != nil {
		t.Fatalf("close pipe: %v", err)
	}
	return <-outCh, ferr
}

func TestTableForBBWLatency(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-workload", "bbw", "-cycle", "latency"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"static schedule table", "BBW-01", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Error("BBW should be feasible in the latency cycle")
	}
}

func TestTableWarnsOnInfeasible(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-workload", "bbw", "-cycle", "runningtime"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "WARNING") {
		t.Error("5ms cycle should warn about BBW's 1ms deadlines")
	}
}

func TestTableBadFlags(t *testing.T) {
	if err := run([]string{"-workload", "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-cycle", "weird"}); err == nil {
		t.Error("unknown cycle accepted")
	}
}

func TestTableWithWCRTAndSynthesis(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-workload", "acc", "-cycle", "latency", "-wcrt", "-synthesize"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"WCRT", "slot-multiplexed synthesis", "lower bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTableSyntheticRunningTime(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-workload", "synthetic", "-messages", "10", "-cycle", "runningtime", "-slots", "40"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "runningtime cycle") || !strings.Contains(out, "40 static slots") {
		t.Errorf("unexpected output:\n%s", out)
	}
}
