package main

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	errCh := make(chan error, 1)
	outCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		outCh <- string(buf)
	}()
	errCh <- fn()
	if err := w.Close(); err != nil {
		t.Fatalf("close pipe: %v", err)
	}
	return <-outCh, <-errCh
}

func TestRunFig5Quick(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{"-experiment", "fig5", "-quick", "-seed", "1"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Figure 5", "CoEfficient", "FSPEC", "miss ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVFormat(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{"-experiment", "fig3", "-quick", "-format", "csv"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "minislots,scheduler,efficiency") {
		t.Errorf("csv header missing:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-experiment", "fig9", "-quick"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(context.Background(), []string{"-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunJSONToFile(t *testing.T) {
	path := t.TempDir() + "/out.json"
	if err := run(context.Background(), []string{"-experiment", "fig3", "-quick", "-format", "json", "-output", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	if !strings.Contains(string(data), `"title"`) || !strings.Contains(string(data), "CoEfficient") {
		t.Errorf("JSON output missing fields:\n%s", data)
	}
}

func TestRunWritesSVG(t *testing.T) {
	dir := t.TempDir()
	_, err := capture(t, func() error {
		return run(context.Background(), []string{"-experiment", "fig3,fig5", "-quick", "-svg", dir})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"fig3.svg", "fig5.svg"} {
		data, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "polyline") {
			t.Errorf("%s is not a chart", name)
		}
	}
}

func TestRunSynthesisAndWCRT(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{"-experiment", "synthesis,wcrt,ablation", "-quick"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"synthesis", "worst-case response times", "ablations"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig1Fig4aQuick(t *testing.T) {
	out, err := capture(t, func() error {
		return run(context.Background(), []string{"-experiment", "fig4a", "-quick"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Figure 4(a)") {
		t.Errorf("output missing fig4a table")
	}
}

// TestRunCancelledContextStillClosesOutput pins the SIGINT contract:
// a cancelled context aborts the sweep through the normal error path,
// so the -output file is still created, flushed and closed by the
// writeFile helper rather than abandoned mid-write.
func TestRunCancelledContextStillClosesOutput(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	path := t.TempDir() + "/partial.json"
	err := run(ctx, []string{"-experiment", "fig3", "-quick", "-format", "json", "-output", path})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	// The file must exist and be a closed, readable artifact (possibly
	// empty: the first experiment was cancelled before any row).
	if _, serr := os.Stat(path); serr != nil {
		t.Fatalf("output file not created/closed: %v", serr)
	}
}
