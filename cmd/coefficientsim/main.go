// Command coefficientsim runs the paper's experiments (Figures 1-5) on the
// FlexRay simulator and prints the resulting tables.
//
// Usage:
//
//	coefficientsim -experiment fig1 [-quick] [-seed 1] [-format table|csv]
//	coefficientsim -experiment all -quick -parallel 8
//	coefficientsim -experiment all -quick -bench results
//
// The -parallel flag sets the sweep worker count (0 = all cores); every
// experiment produces byte-identical tables at any parallelism degree.
// The -bench flag times each experiment serially and in parallel and
// writes one BENCH_<experiment>.json per experiment into the given
// directory, verifying the two runs' tables match along the way.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"github.com/flexray-go/coefficient/internal/experiment"
	"github.com/flexray-go/coefficient/internal/metrics"
	"github.com/flexray-go/coefficient/internal/plot"
	"github.com/flexray-go/coefficient/internal/runner"
	"github.com/flexray-go/coefficient/internal/scenario"
)

func main() {
	// A SIGINT cancels the sweep at the next cell boundary instead of
	// killing the process mid-write: the experiments observe ctx, the
	// run returns through the normal error path, and every output file
	// is still flushed and closed by the writeFile helper.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coefficientsim:", err)
		os.Exit(1)
	}
}

// options carries the parsed CLI configuration shared by the experiment
// dispatch.
type options struct {
	ctx       context.Context
	quick     bool
	seed      uint64
	scn       *scenario.Scenario
	drift     float64
	guardians string
	parallel  int
	replicas  int
}

func run(ctx context.Context, args []string) (retErr error) {
	fs := flag.NewFlagSet("coefficientsim", flag.ContinueOnError)
	var (
		exp      = fs.String("experiment", "all", "experiment to run: fig1, fig2, fig3, fig4, fig4a, fig5, ablation, synthesis, wcrt, degradation, timing or all")
		quick    = fs.Bool("quick", false, "shrink horizons/batches for a fast smoke run")
		seed     = fs.Uint64("seed", 1, "deterministic seed for arrivals and fault injection")
		scnArg   = fs.String("scenario", "", "fault-scenario JSON file for the degradation experiment (default: built-in BER step + blackout)")
		drift    = fs.Float64("drift", 100, "oscillator drift bound in ppm for the timing experiment")
		guards   = fs.String("guardians", "both", "bus-guardian variants for the timing experiment: both, on or off")
		parallel = fs.Int("parallel", 0, "sweep worker count: 0 = all cores, 1 = serial; output is identical for every value")
		replicas = fs.Int("replicas", 0, "Monte-Carlo replicas per fig5 point, each on an independent derived seed (0 = auto: 1 with -quick, 100 otherwise)")
		format   = fs.String("format", "table", "output format: table, csv or json")
		output   = fs.String("output", "", "write to this file instead of stdout")
		svgDir   = fs.String("svg", "", "also write an SVG chart per experiment into this directory")
		benchDir = fs.String("bench", "", "time each experiment serial vs parallel and write BENCH_<experiment>.json into this directory")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProf  = fs.String("memprofile", "", "write an allocation profile taken at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	opts := options{
		ctx:       ctx,
		quick:     *quick,
		seed:      *seed,
		drift:     *drift,
		guardians: *guards,
		parallel:  *parallel,
		replicas:  *replicas,
	}
	if opts.replicas <= 0 {
		// Quick smoke runs keep the single-seed point; full runs ship the
		// paper's miss-ratio curves with real confidence intervals, which
		// the batched replica engine makes affordable.
		if opts.quick {
			opts.replicas = 1
		} else {
			opts.replicas = 100
		}
	}
	if *scnArg != "" {
		s, err := scenario.Load(*scnArg)
		if err != nil {
			return err
		}
		opts.scn = s
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"fig1", "fig2", "fig3", "fig4", "fig4a", "fig5", "ablation", "synthesis", "wcrt", "degradation", "timing"}
	}
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
	}

	if *benchDir != "" {
		if *exp == "all" {
			// The replica-scaling benchmark has no table-experiment
			// counterpart; it exists only under -bench.
			names = append(names, "replica")
		}
		return runBench(*benchDir, names, opts)
	}

	emitAll := func(w io.Writer) error {
		for _, name := range names {
			tbl, chart, err := runOne(name, opts)
			if err != nil {
				return err
			}
			if err := emit(w, tbl, *format); err != nil {
				return err
			}
			fmt.Fprintln(w)
			if *svgDir != "" && chart != nil {
				if err := writeSVG(*svgDir, name, chart); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if *output != "" {
		// Close errors must surface: a full disk otherwise truncates the
		// results file silently.
		return writeFile(*output, emitAll)
	}
	return emitAll(os.Stdout)
}

// startProfiles begins CPU profiling and arranges for the allocation
// profile, returning a stop function that finishes both.  Every error —
// create, start, write, close — surfaces: a truncated profile silently
// misdirects an optimization session.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				return nil, fmt.Errorf("start cpu profile: %v (and close %s: %v)", err, cpuPath, cerr)
			}
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close %s: %w", cpuPath, err)
			}
		}
		if memPath != "" {
			// One forced GC so the allocation profile reflects live and
			// cumulative allocations up to exit, matching go test -memprofile.
			runtime.GC()
			err := writeFile(memPath, func(w io.Writer) error {
				return pprof.Lookup("allocs").WriteTo(w, 0)
			})
			if err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}

// writeFile creates path, hands it to write, and propagates the Close
// error if write itself succeeded — the final flush of buffered data
// happens in Close, so ignoring it hides short writes on a full disk.
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return write(f)
}

func writeSVG(dir, name string, chart *plot.Chart) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, name+".svg"), chart.WriteSVG)
}

// benchResult is the JSON schema of one BENCH_<experiment>.json file.
type benchResult struct {
	Experiment      string  `json:"experiment"`
	Quick           bool    `json:"quick"`
	Seed            uint64  `json:"seed"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	ParallelWorkers int     `json:"parallelWorkers"`
	SerialSeconds   float64 `json:"serialSeconds"`
	ParallelSeconds float64 `json:"parallelSeconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
	Table           any     `json:"table"`
}

// runBench times every experiment twice — serial (-parallel 1) and at the
// requested parallelism — checks the rendered tables are byte-identical,
// and records wall-clock plus the headline rows per experiment.
func runBench(dir string, names []string, opts options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	workers := runner.Workers(opts.parallel)
	for _, name := range names {
		if name == "replica" {
			if err := runBenchReplica(dir, opts); err != nil {
				return err
			}
			continue
		}
		serialOpts := opts
		serialOpts.parallel = 1
		start := time.Now()
		serialTbl, _, err := runOne(name, serialOpts)
		if err != nil {
			return fmt.Errorf("bench %s (serial): %w", name, err)
		}
		serialSec := time.Since(start).Seconds()

		start = time.Now()
		parTbl, _, err := runOne(name, opts)
		if err != nil {
			return fmt.Errorf("bench %s (parallel): %w", name, err)
		}
		parSec := time.Since(start).Seconds()

		identical := serialTbl.String() == parTbl.String()
		if !identical {
			return fmt.Errorf("bench %s: parallel table differs from serial table", name)
		}
		speedup := 0.0
		if parSec > 0 {
			speedup = serialSec / parSec
		}
		res := benchResult{
			Experiment:      name,
			Quick:           opts.quick,
			Seed:            opts.seed,
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			ParallelWorkers: workers,
			SerialSeconds:   serialSec,
			ParallelSeconds: parSec,
			Speedup:         speedup,
			Identical:       identical,
			Table:           tableJSON(parTbl),
		}
		path := filepath.Join(dir, "BENCH_"+name+".json")
		err = writeFile(path, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(res)
		})
		if err != nil {
			return err
		}
		fmt.Printf("BENCH %-12s serial %.3fs  parallel(%d) %.3fs  speedup %.2fx  -> %s\n",
			name, serialSec, workers, parSec, speedup, path)
	}
	return nil
}

// replicaScalingRow is one row of the replica-scaling table: the same
// fig5 sweep at a given replica count, run both ways.
type replicaScalingRow struct {
	Replicas              int     `json:"replicas"`
	IndependentSeconds    float64 `json:"independentSeconds"`
	BatchedSeconds        float64 `json:"batchedSeconds"`
	PerReplicaIndependent float64 `json:"perReplicaIndependentSeconds"`
	PerReplicaBatched     float64 `json:"perReplicaBatchedSeconds"`
	EndToEndSpeedup       float64 `json:"endToEndSpeedup"`
}

// replicaBenchResult is the BENCH_replica.json schema.  It keeps the
// benchguard-consumed fields (experiment/quick/serialSeconds/
// parallelSeconds/speedup/identical) and documents what they measure in
// Definition: the per-replica cost attributable to replica machinery —
// setup (workload assembly, feasibility analysis, scheduler planning,
// engine compilation) plus dispatch — after subtracting the marginal
// simulation cost every replica pays regardless of engine.
type replicaBenchResult struct {
	Experiment      string  `json:"experiment"`
	Quick           bool    `json:"quick"`
	Seed            uint64  `json:"seed"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	ParallelWorkers int     `json:"parallelWorkers"`
	Definition      string  `json:"definition"`
	SerialSeconds   float64 `json:"serialSeconds"`
	ParallelSeconds float64 `json:"parallelSeconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
	// Raw wall-clock totals of the headline 100-replica sweep, so the
	// amortized-overhead headline above can always be cross-checked
	// against end-to-end time.
	EndToEndIndependentSeconds float64 `json:"endToEndIndependentSeconds"`
	EndToEndBatchedSeconds     float64 `json:"endToEndBatchedSeconds"`
	EndToEndSpeedup            float64 `json:"endToEndSpeedup"`
	// MarginalReplicaSeconds estimates the irreducible per-replica
	// simulation cost: the slope of batched wall clock between 1 and
	// 100 replicas.
	MarginalReplicaSeconds float64             `json:"marginalReplicaSeconds"`
	Table                  []replicaScalingRow `json:"table"`
}

const replicaBenchDefinition = "serialSeconds is the total cost attributable to per-replica setup+dispatch " +
	"over 100 independent one-engine-per-replica fig5 runs (independent total minus 100x the marginal " +
	"per-replica simulation cost); parallelSeconds is the same overhead for the batched engine (compile " +
	"once, Reset+Run per replica); speedup is their ratio — how much cheaper the amortized per-replica " +
	"cost beyond the irreducible simulation is. endToEnd* fields and the table carry raw serial " +
	"wall-clock at 1/10/100 replicas; identical additionally requires batched rows to equal the " +
	"independent rows exactly, serially and at parallelism 8."

// runBenchReplica measures the batched replica engine against the
// one-engine-per-replica path on the fig5 sweep at 1, 10 and 100
// replicas, all serial so the comparison is amortization, not core
// count, and writes BENCH_replica.json.  Both sides must produce
// identical rows — the batched engine is a pure optimization.
func runBenchReplica(dir string, opts options) error {
	missNaive := func(replicas, parallel int) ([]experiment.MissRow, float64, error) {
		start := time.Now()
		rows, err := experiment.MissRatioNaive(experiment.MissOptions{
			Seed: opts.seed, Quick: opts.quick, Replicas: replicas, Parallel: parallel, Ctx: opts.ctx,
		})
		return rows, time.Since(start).Seconds(), err
	}
	missBatched := func(replicas, parallel int) ([]experiment.MissRow, float64, error) {
		start := time.Now()
		rows, err := experiment.MissRatio(experiment.MissOptions{
			Seed: opts.seed, Quick: opts.quick, Replicas: replicas, Parallel: parallel, Ctx: opts.ctx,
		})
		return rows, time.Since(start).Seconds(), err
	}

	counts := []int{1, 10, 100}
	table := make([]replicaScalingRow, 0, len(counts))
	identical := true
	var batched1, batched100, naive100 float64
	for _, n := range counts {
		// The single-replica runs are a few milliseconds each; take the
		// median of five so scheduling noise does not leak into the
		// marginal-cost estimate.
		reps := 1
		if n == 1 {
			reps = 5
		}
		var naiveRows, batchedRows []experiment.MissRow
		naiveTimes := make([]float64, 0, reps)
		batchedTimes := make([]float64, 0, reps)
		for i := 0; i < reps; i++ {
			rows, sec, err := missNaive(n, 1)
			if err != nil {
				return fmt.Errorf("bench replica: independent x%d: %w", n, err)
			}
			naiveRows = rows
			naiveTimes = append(naiveTimes, sec)
			rows, sec, err = missBatched(n, 1)
			if err != nil {
				return fmt.Errorf("bench replica: batched x%d: %w", n, err)
			}
			batchedRows = rows
			batchedTimes = append(batchedTimes, sec)
		}
		if !reflect.DeepEqual(naiveRows, batchedRows) {
			identical = false
		}
		nSec, bSec := median(naiveTimes), median(batchedTimes)
		speedup := 0.0
		if bSec > 0 {
			speedup = nSec / bSec
		}
		table = append(table, replicaScalingRow{
			Replicas:              n,
			IndependentSeconds:    nSec,
			BatchedSeconds:        bSec,
			PerReplicaIndependent: nSec / float64(n),
			PerReplicaBatched:     bSec / float64(n),
			EndToEndSpeedup:       speedup,
		})
		switch n {
		case 1:
			batched1 = bSec
		case 100:
			naive100, batched100 = nSec, bSec
		}
	}
	// The parallel-identity leg of the contract: the batched rows must
	// not depend on the worker count either.
	parRows, _, err := missBatched(10, 8)
	if err != nil {
		return fmt.Errorf("bench replica: batched parallel: %w", err)
	}
	serRows, _, err := missBatched(10, 1)
	if err != nil {
		return fmt.Errorf("bench replica: batched serial: %w", err)
	}
	if !reflect.DeepEqual(parRows, serRows) {
		identical = false
	}
	if !identical {
		return fmt.Errorf("bench replica: batched rows differ from the independent path")
	}

	// Marginal per-replica simulation cost from the batched slope, then
	// the setup+dispatch overhead each side pays on top of it for the
	// 100-replica sweep.
	marginal := (batched100 - batched1) / 99
	overheadNaive := naive100 - 100*marginal
	overheadBatched := batched100 - 100*marginal
	speedup := 0.0
	if overheadBatched > 0 {
		speedup = overheadNaive / overheadBatched
	}
	endToEnd := 0.0
	if batched100 > 0 {
		endToEnd = naive100 / batched100
	}
	res := replicaBenchResult{
		Experiment:                 "replica",
		Quick:                      opts.quick,
		Seed:                       opts.seed,
		GOMAXPROCS:                 runtime.GOMAXPROCS(0),
		ParallelWorkers:            runner.Workers(opts.parallel),
		Definition:                 replicaBenchDefinition,
		SerialSeconds:              overheadNaive,
		ParallelSeconds:            overheadBatched,
		Speedup:                    speedup,
		Identical:                  identical,
		EndToEndIndependentSeconds: naive100,
		EndToEndBatchedSeconds:     batched100,
		EndToEndSpeedup:            endToEnd,
		MarginalReplicaSeconds:     marginal,
		Table:                      table,
	}
	path := filepath.Join(dir, "BENCH_replica.json")
	err = writeFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	})
	if err != nil {
		return err
	}
	fmt.Printf("BENCH %-12s overhead %.3fs vs %.3fs (amortized %.1fx)  end-to-end %.3fs vs %.3fs (%.2fx)  -> %s\n",
		"replica", overheadNaive, overheadBatched, speedup, naive100, batched100, endToEnd, path)
	return nil
}

// median returns the middle value of the (short) sample set.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func runOne(name string, o options) (experiment.Table, *plot.Chart, error) {
	switch name {
	case "timing":
		rows, err := experiment.TimingFault(experiment.TimingFaultOptions{
			Seed: o.seed, Quick: o.quick, DriftPPM: o.drift, Guardians: o.guardians,
			Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.TimingFaultTable(rows), nil, nil
	case "degradation":
		rows, err := experiment.Degradation(experiment.DegradationOptions{
			Scenario: o.scn, Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.DegradationTable(rows), nil, nil
	case "fig1":
		rows, err := experiment.RunningTime(experiment.RunningTimeOptions{
			Scenario: experiment.BER7(), Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.RunningTimeTable("Figure 1: running time (BER-7)", rows),
			experiment.RunningTimeChart("Figure 1: running time (BER-7)", rows), nil
	case "fig2":
		rows, err := experiment.RunningTime(experiment.RunningTimeOptions{
			Scenario: experiment.BER9(), Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.RunningTimeTable("Figure 2: running time (BER-9)", rows),
			experiment.RunningTimeChart("Figure 2: running time (BER-9)", rows), nil
	case "fig3":
		rows, err := experiment.Utilization(experiment.UtilizationOptions{
			Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.UtilizationTable(rows), experiment.UtilizationChart(rows), nil
	case "fig4a":
		rows, err := experiment.FrameLatency(experiment.FrameLatencyOptions{
			Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.FrameLatencyTable(rows), experiment.FrameLatencyChart(rows), nil
	case "fig4":
		rows, err := experiment.Latency(experiment.LatencyOptions{
			Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.LatencyTable(rows), experiment.LatencyChart(rows, "BBW", metrics.Dynamic), nil
	case "wcrt":
		rows, err := experiment.WCRT(experiment.WCRTOptions{Seed: o.seed})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.WCRTTable(rows), nil, nil
	case "synthesis":
		rows, err := experiment.Synthesis(experiment.SynthesisOptions{Seed: o.seed})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.SynthesisTable(rows), nil, nil
	case "ablation":
		rows, err := experiment.Ablations(experiment.AblationOptions{
			Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.AblationTable(rows), nil, nil
	case "fig5":
		rows, err := experiment.MissRatio(experiment.MissOptions{
			Seed: o.seed, Quick: o.quick, Replicas: o.replicas, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.MissTable(rows), experiment.MissChart(rows), nil
	default:
		return experiment.Table{}, nil, fmt.Errorf("unknown experiment %q", name)
	}
}

func emit(w io.Writer, tbl experiment.Table, format string) error {
	switch format {
	case "table":
		_, err := io.WriteString(w, tbl.String())
		return err
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tableJSON(tbl))
	default: // csv
		cw := csv.NewWriter(w)
		if err := cw.Write(tbl.Header); err != nil {
			return err
		}
		for _, row := range tbl.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		// Flush pushes the buffered rows to the writer; Error surfaces
		// any write failure Flush swallowed.
		cw.Flush()
		return cw.Error()
	}
}

// tableJSON renders a table as a list of header-keyed objects.
func tableJSON(tbl experiment.Table) map[string]any {
	rows := make([]map[string]string, 0, len(tbl.Rows))
	for _, r := range tbl.Rows {
		obj := make(map[string]string, len(tbl.Header))
		for i, h := range tbl.Header {
			if i < len(r) {
				obj[h] = r[i]
			}
		}
		rows = append(rows, obj)
	}
	return map[string]any{"title": tbl.Title, "rows": rows}
}
