// Command coefficientsim runs the paper's experiments (Figures 1-5) on the
// FlexRay simulator and prints the resulting tables.
//
// Usage:
//
//	coefficientsim -experiment fig1 [-quick] [-seed 1] [-format table|csv]
//	coefficientsim -experiment all -quick -parallel 8
//	coefficientsim -experiment all -quick -bench results
//
// The -parallel flag sets the sweep worker count (0 = all cores); every
// experiment produces byte-identical tables at any parallelism degree.
// The -bench flag times each experiment serially and in parallel and
// writes one BENCH_<experiment>.json per experiment into the given
// directory, verifying the two runs' tables match along the way.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/flexray-go/coefficient/internal/experiment"
	"github.com/flexray-go/coefficient/internal/metrics"
	"github.com/flexray-go/coefficient/internal/plot"
	"github.com/flexray-go/coefficient/internal/runner"
	"github.com/flexray-go/coefficient/internal/scenario"
)

func main() {
	// A SIGINT cancels the sweep at the next cell boundary instead of
	// killing the process mid-write: the experiments observe ctx, the
	// run returns through the normal error path, and every output file
	// is still flushed and closed by the writeFile helper.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coefficientsim:", err)
		os.Exit(1)
	}
}

// options carries the parsed CLI configuration shared by the experiment
// dispatch.
type options struct {
	ctx       context.Context
	quick     bool
	seed      uint64
	scn       *scenario.Scenario
	drift     float64
	guardians string
	parallel  int
}

func run(ctx context.Context, args []string) (retErr error) {
	fs := flag.NewFlagSet("coefficientsim", flag.ContinueOnError)
	var (
		exp      = fs.String("experiment", "all", "experiment to run: fig1, fig2, fig3, fig4, fig4a, fig5, ablation, synthesis, wcrt, degradation, timing or all")
		quick    = fs.Bool("quick", false, "shrink horizons/batches for a fast smoke run")
		seed     = fs.Uint64("seed", 1, "deterministic seed for arrivals and fault injection")
		scnArg   = fs.String("scenario", "", "fault-scenario JSON file for the degradation experiment (default: built-in BER step + blackout)")
		drift    = fs.Float64("drift", 100, "oscillator drift bound in ppm for the timing experiment")
		guards   = fs.String("guardians", "both", "bus-guardian variants for the timing experiment: both, on or off")
		parallel = fs.Int("parallel", 0, "sweep worker count: 0 = all cores, 1 = serial; output is identical for every value")
		format   = fs.String("format", "table", "output format: table, csv or json")
		output   = fs.String("output", "", "write to this file instead of stdout")
		svgDir   = fs.String("svg", "", "also write an SVG chart per experiment into this directory")
		benchDir = fs.String("bench", "", "time each experiment serial vs parallel and write BENCH_<experiment>.json into this directory")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProf  = fs.String("memprofile", "", "write an allocation profile taken at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}
	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	opts := options{
		ctx:       ctx,
		quick:     *quick,
		seed:      *seed,
		drift:     *drift,
		guardians: *guards,
		parallel:  *parallel,
	}
	if *scnArg != "" {
		s, err := scenario.Load(*scnArg)
		if err != nil {
			return err
		}
		opts.scn = s
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"fig1", "fig2", "fig3", "fig4", "fig4a", "fig5", "ablation", "synthesis", "wcrt", "degradation", "timing"}
	}
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
	}

	if *benchDir != "" {
		return runBench(*benchDir, names, opts)
	}

	emitAll := func(w io.Writer) error {
		for _, name := range names {
			tbl, chart, err := runOne(name, opts)
			if err != nil {
				return err
			}
			if err := emit(w, tbl, *format); err != nil {
				return err
			}
			fmt.Fprintln(w)
			if *svgDir != "" && chart != nil {
				if err := writeSVG(*svgDir, name, chart); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if *output != "" {
		// Close errors must surface: a full disk otherwise truncates the
		// results file silently.
		return writeFile(*output, emitAll)
	}
	return emitAll(os.Stdout)
}

// startProfiles begins CPU profiling and arranges for the allocation
// profile, returning a stop function that finishes both.  Every error —
// create, start, write, close — surfaces: a truncated profile silently
// misdirects an optimization session.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			if cerr := f.Close(); cerr != nil {
				return nil, fmt.Errorf("start cpu profile: %v (and close %s: %v)", err, cpuPath, cerr)
			}
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close %s: %w", cpuPath, err)
			}
		}
		if memPath != "" {
			// One forced GC so the allocation profile reflects live and
			// cumulative allocations up to exit, matching go test -memprofile.
			runtime.GC()
			err := writeFile(memPath, func(w io.Writer) error {
				return pprof.Lookup("allocs").WriteTo(w, 0)
			})
			if err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}

// writeFile creates path, hands it to write, and propagates the Close
// error if write itself succeeded — the final flush of buffered data
// happens in Close, so ignoring it hides short writes on a full disk.
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close %s: %w", path, cerr)
		}
	}()
	return write(f)
}

func writeSVG(dir, name string, chart *plot.Chart) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, name+".svg"), chart.WriteSVG)
}

// benchResult is the JSON schema of one BENCH_<experiment>.json file.
type benchResult struct {
	Experiment      string  `json:"experiment"`
	Quick           bool    `json:"quick"`
	Seed            uint64  `json:"seed"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	ParallelWorkers int     `json:"parallelWorkers"`
	SerialSeconds   float64 `json:"serialSeconds"`
	ParallelSeconds float64 `json:"parallelSeconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
	Table           any     `json:"table"`
}

// runBench times every experiment twice — serial (-parallel 1) and at the
// requested parallelism — checks the rendered tables are byte-identical,
// and records wall-clock plus the headline rows per experiment.
func runBench(dir string, names []string, opts options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	workers := runner.Workers(opts.parallel)
	for _, name := range names {
		serialOpts := opts
		serialOpts.parallel = 1
		start := time.Now()
		serialTbl, _, err := runOne(name, serialOpts)
		if err != nil {
			return fmt.Errorf("bench %s (serial): %w", name, err)
		}
		serialSec := time.Since(start).Seconds()

		start = time.Now()
		parTbl, _, err := runOne(name, opts)
		if err != nil {
			return fmt.Errorf("bench %s (parallel): %w", name, err)
		}
		parSec := time.Since(start).Seconds()

		identical := serialTbl.String() == parTbl.String()
		if !identical {
			return fmt.Errorf("bench %s: parallel table differs from serial table", name)
		}
		speedup := 0.0
		if parSec > 0 {
			speedup = serialSec / parSec
		}
		res := benchResult{
			Experiment:      name,
			Quick:           opts.quick,
			Seed:            opts.seed,
			GOMAXPROCS:      runtime.GOMAXPROCS(0),
			ParallelWorkers: workers,
			SerialSeconds:   serialSec,
			ParallelSeconds: parSec,
			Speedup:         speedup,
			Identical:       identical,
			Table:           tableJSON(parTbl),
		}
		path := filepath.Join(dir, "BENCH_"+name+".json")
		err = writeFile(path, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(res)
		})
		if err != nil {
			return err
		}
		fmt.Printf("BENCH %-12s serial %.3fs  parallel(%d) %.3fs  speedup %.2fx  -> %s\n",
			name, serialSec, workers, parSec, speedup, path)
	}
	return nil
}

func runOne(name string, o options) (experiment.Table, *plot.Chart, error) {
	switch name {
	case "timing":
		rows, err := experiment.TimingFault(experiment.TimingFaultOptions{
			Seed: o.seed, Quick: o.quick, DriftPPM: o.drift, Guardians: o.guardians,
			Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.TimingFaultTable(rows), nil, nil
	case "degradation":
		rows, err := experiment.Degradation(experiment.DegradationOptions{
			Scenario: o.scn, Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.DegradationTable(rows), nil, nil
	case "fig1":
		rows, err := experiment.RunningTime(experiment.RunningTimeOptions{
			Scenario: experiment.BER7(), Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.RunningTimeTable("Figure 1: running time (BER-7)", rows),
			experiment.RunningTimeChart("Figure 1: running time (BER-7)", rows), nil
	case "fig2":
		rows, err := experiment.RunningTime(experiment.RunningTimeOptions{
			Scenario: experiment.BER9(), Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.RunningTimeTable("Figure 2: running time (BER-9)", rows),
			experiment.RunningTimeChart("Figure 2: running time (BER-9)", rows), nil
	case "fig3":
		rows, err := experiment.Utilization(experiment.UtilizationOptions{
			Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.UtilizationTable(rows), experiment.UtilizationChart(rows), nil
	case "fig4a":
		rows, err := experiment.FrameLatency(experiment.FrameLatencyOptions{
			Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.FrameLatencyTable(rows), experiment.FrameLatencyChart(rows), nil
	case "fig4":
		rows, err := experiment.Latency(experiment.LatencyOptions{
			Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.LatencyTable(rows), experiment.LatencyChart(rows, "BBW", metrics.Dynamic), nil
	case "wcrt":
		rows, err := experiment.WCRT(experiment.WCRTOptions{Seed: o.seed})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.WCRTTable(rows), nil, nil
	case "synthesis":
		rows, err := experiment.Synthesis(experiment.SynthesisOptions{Seed: o.seed})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.SynthesisTable(rows), nil, nil
	case "ablation":
		rows, err := experiment.Ablations(experiment.AblationOptions{
			Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.AblationTable(rows), nil, nil
	case "fig5":
		rows, err := experiment.MissRatio(experiment.MissOptions{
			Seed: o.seed, Quick: o.quick, Parallel: o.parallel, Ctx: o.ctx,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.MissTable(rows), experiment.MissChart(rows), nil
	default:
		return experiment.Table{}, nil, fmt.Errorf("unknown experiment %q", name)
	}
}

func emit(w io.Writer, tbl experiment.Table, format string) error {
	switch format {
	case "table":
		_, err := io.WriteString(w, tbl.String())
		return err
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tableJSON(tbl))
	default: // csv
		cw := csv.NewWriter(w)
		if err := cw.Write(tbl.Header); err != nil {
			return err
		}
		for _, row := range tbl.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		// Flush pushes the buffered rows to the writer; Error surfaces
		// any write failure Flush swallowed.
		cw.Flush()
		return cw.Error()
	}
}

// tableJSON renders a table as a list of header-keyed objects.
func tableJSON(tbl experiment.Table) map[string]any {
	rows := make([]map[string]string, 0, len(tbl.Rows))
	for _, r := range tbl.Rows {
		obj := make(map[string]string, len(tbl.Header))
		for i, h := range tbl.Header {
			if i < len(r) {
				obj[h] = r[i]
			}
		}
		rows = append(rows, obj)
	}
	return map[string]any{"title": tbl.Title, "rows": rows}
}
