// Command coefficientsim runs the paper's experiments (Figures 1-5) on the
// FlexRay simulator and prints the resulting tables.
//
// Usage:
//
//	coefficientsim -experiment fig1 [-quick] [-seed 1] [-format table|csv]
//	coefficientsim -experiment all -quick
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/flexray-go/coefficient/internal/experiment"
	"github.com/flexray-go/coefficient/internal/metrics"
	"github.com/flexray-go/coefficient/internal/plot"
	"github.com/flexray-go/coefficient/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coefficientsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coefficientsim", flag.ContinueOnError)
	var (
		exp    = fs.String("experiment", "all", "experiment to run: fig1, fig2, fig3, fig4, fig4a, fig5, ablation, synthesis, wcrt, degradation, timing or all")
		quick  = fs.Bool("quick", false, "shrink horizons/batches for a fast smoke run")
		seed   = fs.Uint64("seed", 1, "deterministic seed for arrivals and fault injection")
		scnArg = fs.String("scenario", "", "fault-scenario JSON file for the degradation experiment (default: built-in BER step + blackout)")
		drift  = fs.Float64("drift", 100, "oscillator drift bound in ppm for the timing experiment")
		guards = fs.String("guardians", "both", "bus-guardian variants for the timing experiment: both, on or off")
		format = fs.String("format", "table", "output format: table, csv or json")
		output = fs.String("output", "", "write to this file instead of stdout")
		svgDir = fs.String("svg", "", "also write an SVG chart per experiment into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q", *format)
	}
	var w io.Writer = os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	var scn *scenario.Scenario
	if *scnArg != "" {
		s, err := scenario.Load(*scnArg)
		if err != nil {
			return err
		}
		scn = s
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = []string{"fig1", "fig2", "fig3", "fig4", "fig4a", "fig5", "ablation", "synthesis", "wcrt", "degradation", "timing"}
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		tbl, chart, err := runOne(name, *quick, *seed, scn, *drift, *guards)
		if err != nil {
			return err
		}
		if err := emit(w, tbl, *format); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if *svgDir != "" && chart != nil {
			if err := writeSVG(*svgDir, name, chart); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSVG(dir, name string, chart *plot.Chart) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return chart.WriteSVG(f)
}

func runOne(name string, quick bool, seed uint64, scn *scenario.Scenario, drift float64, guardians string) (experiment.Table, *plot.Chart, error) {
	switch name {
	case "timing":
		rows, err := experiment.TimingFault(experiment.TimingFaultOptions{
			Seed: seed, Quick: quick, DriftPPM: drift, Guardians: guardians,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.TimingFaultTable(rows), nil, nil
	case "degradation":
		rows, err := experiment.Degradation(experiment.DegradationOptions{
			Scenario: scn, Seed: seed, Quick: quick,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.DegradationTable(rows), nil, nil
	case "fig1":
		rows, err := experiment.RunningTime(experiment.RunningTimeOptions{
			Scenario: experiment.BER7(), Seed: seed, Quick: quick,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.RunningTimeTable("Figure 1: running time (BER-7)", rows),
			experiment.RunningTimeChart("Figure 1: running time (BER-7)", rows), nil
	case "fig2":
		rows, err := experiment.RunningTime(experiment.RunningTimeOptions{
			Scenario: experiment.BER9(), Seed: seed, Quick: quick,
		})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.RunningTimeTable("Figure 2: running time (BER-9)", rows),
			experiment.RunningTimeChart("Figure 2: running time (BER-9)", rows), nil
	case "fig3":
		rows, err := experiment.Utilization(experiment.UtilizationOptions{Seed: seed, Quick: quick})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.UtilizationTable(rows), experiment.UtilizationChart(rows), nil
	case "fig4a":
		rows, err := experiment.FrameLatency(experiment.FrameLatencyOptions{Seed: seed, Quick: quick})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.FrameLatencyTable(rows), experiment.FrameLatencyChart(rows), nil
	case "fig4":
		rows, err := experiment.Latency(experiment.LatencyOptions{Seed: seed, Quick: quick})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.LatencyTable(rows), experiment.LatencyChart(rows, "BBW", metrics.Dynamic), nil
	case "wcrt":
		rows, err := experiment.WCRT(experiment.WCRTOptions{Seed: seed})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.WCRTTable(rows), nil, nil
	case "synthesis":
		rows, err := experiment.Synthesis(experiment.SynthesisOptions{Seed: seed})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.SynthesisTable(rows), nil, nil
	case "ablation":
		rows, err := experiment.Ablations(experiment.AblationOptions{Seed: seed, Quick: quick})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.AblationTable(rows), nil, nil
	case "fig5":
		rows, err := experiment.MissRatio(experiment.MissOptions{Seed: seed, Quick: quick})
		if err != nil {
			return experiment.Table{}, nil, err
		}
		return experiment.MissTable(rows), experiment.MissChart(rows), nil
	default:
		return experiment.Table{}, nil, fmt.Errorf("unknown experiment %q", name)
	}
}

func emit(w io.Writer, tbl experiment.Table, format string) error {
	switch format {
	case "table":
		_, err := io.WriteString(w, tbl.String())
		return err
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tableJSON(tbl))
	default: // csv
		cw := csv.NewWriter(w)
		if err := cw.Write(tbl.Header); err != nil {
			return err
		}
		for _, row := range tbl.Rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
}

// tableJSON renders a table as a list of header-keyed objects.
func tableJSON(tbl experiment.Table) map[string]any {
	rows := make([]map[string]string, 0, len(tbl.Rows))
	for _, r := range tbl.Rows {
		obj := make(map[string]string, len(tbl.Header))
		for i, h := range tbl.Header {
			if i < len(r) {
				obj[h] = r[i]
			}
		}
		rows = append(rows, obj)
	}
	return map[string]any{"title": tbl.Title, "rows": rows}
}
