// Command benchguard compares a fresh benchmark sweep against the
// committed baseline and fails on wall-clock regressions.
//
// Usage:
//
//	benchguard -baseline results -candidate bench-out [-threshold 0.25] [-min 0.05]
//
// Both directories hold BENCH_<experiment>.json files as written by
// `coefficientsim -bench` (`make bench`).  For every experiment present
// in both, the candidate's serial wall-clock is compared against the
// baseline's: a slowdown beyond the threshold (default 25%) is an
// error; any smaller slowdown is a warning.  Experiments whose baseline
// serial time is under -min seconds (default 50ms) are exempt from the
// hard gate — at that scale OS scheduling noise routinely exceeds any
// threshold worth setting — and report WARN instead.  A candidate whose
// parallel table diverged from its serial table (identical=false) is
// always an error — determinism outranks speed.  Experiments present
// only on one side are reported but not fatal, so adding or retiring an
// experiment does not break the gate.
//
// With -trend, every run (passing or failing) is also appended as one
// JSON line to the given trend file (`make benchcheck` uses
// results/BENCH_TREND.jsonl), so throughput is tracked across PRs
// instead of only being thresholded against the previous baseline.
//
// Exit status: 0 when no experiment regressed, 1 on regression or
// determinism failure, 2 on a usage or read error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/flexray-go/coefficient/internal/serve/journal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchFile is the subset of the BENCH_<experiment>.json schema the
// guard consumes.
type benchFile struct {
	Experiment      string  `json:"experiment"`
	Quick           bool    `json:"quick"`
	SerialSeconds   float64 `json:"serialSeconds"`
	ParallelSeconds float64 `json:"parallelSeconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		baseline  = fs.String("baseline", "results", "directory with the committed BENCH_*.json baseline")
		candidate = fs.String("candidate", "", "directory with the fresh BENCH_*.json sweep to check")
		threshold = fs.Float64("threshold", 0.25, "fractional serial-time slowdown that fails the gate")
		minBase   = fs.Float64("min", 0.05, "baseline serial seconds below which slowdowns only warn (scheduling noise dominates shorter runs)")
		trend     = fs.String("trend", "", "append this run's candidate sweep as one JSON line to the given trend file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *candidate == "" {
		fmt.Fprintln(errOut, "benchguard: -candidate directory is required")
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintln(errOut, "benchguard: -threshold must be positive")
		return 2
	}

	base, err := loadDir(*baseline)
	if err != nil {
		fmt.Fprintln(errOut, "benchguard:", err)
		return 2
	}
	cand, err := loadDir(*candidate)
	if err != nil {
		fmt.Fprintln(errOut, "benchguard:", err)
		return 2
	}
	if len(base) == 0 {
		fmt.Fprintf(errOut, "benchguard: no BENCH_*.json files in baseline %s\n", *baseline)
		return 2
	}
	if len(cand) == 0 {
		fmt.Fprintf(errOut, "benchguard: no BENCH_*.json files in candidate %s\n", *candidate)
		return 2
	}

	report := compare(base, cand, *threshold, *minBase)
	for _, line := range report.lines {
		fmt.Fprintln(out, line)
	}
	if *trend != "" {
		// Failed runs are recorded too: a regression that was later fixed
		// is exactly the kind of history the trend exists to keep.
		if err := appendTrend(*trend, cand, !report.failed); err != nil {
			fmt.Fprintln(errOut, "benchguard:", err)
			return 2
		}
		fmt.Fprintf(out, "trend: appended %d experiments to %s\n", len(cand), *trend)
	}
	if report.failed {
		return 1
	}
	return 0
}

// trendEntry is one line of the JSONL trend file: a timestamped snapshot
// of a whole candidate sweep plus the gate's verdict.
type trendEntry struct {
	Time        string               `json:"time"`
	Passed      bool                 `json:"passed"`
	Experiments map[string]benchFile `json:"experiments"`
}

// appendTrend appends the sweep to the trend file, creating it (and its
// directory) on first use.  encoding/json writes map keys sorted, so the
// line layout is stable across runs.  The write goes through the
// journal's fsynced single-O_APPEND-write helper: a crash mid-append can
// lose the whole line but never leave a torn one, and the line is on
// stable storage before the gate reports its verdict.
func appendTrend(path string, cand map[string]benchFile, passed bool) error {
	data, err := json.Marshal(trendEntry{
		Time:        time.Now().UTC().Format(time.RFC3339),
		Passed:      passed,
		Experiments: cand,
	})
	if err != nil {
		return fmt.Errorf("encode trend entry: %w", err)
	}
	if err := journal.AppendFile(nil, path, append(data, '\n')); err != nil {
		return fmt.Errorf("append trend: %w", err)
	}
	return nil
}

// comparison accumulates the rendered verdict lines and the overall
// pass/fail state.
type comparison struct {
	lines  []string
	failed bool
}

// compare renders one verdict line per experiment, in name order.
func compare(base, cand map[string]benchFile, threshold, minBase float64) comparison {
	var c comparison
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		b := base[name]
		nc, ok := cand[name]
		if !ok {
			c.lines = append(c.lines,
				fmt.Sprintf("SKIP  %-12s in baseline only", name))
			continue
		}
		c.lines = append(c.lines, verdict(&c.failed, name, b, nc, threshold, minBase))
	}

	extra := make([]string, 0, len(cand))
	for name := range cand {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		c.lines = append(c.lines,
			fmt.Sprintf("SKIP  %-12s in candidate only", name))
	}
	return c
}

// verdict judges one experiment pair and marks failed on a hard
// regression or determinism violation.  Experiments whose baseline runs
// shorter than minBase are warned about but never fail: at a few
// milliseconds of wall clock, OS scheduling noise dwarfs any real
// regression the gate could detect.
func verdict(failed *bool, name string, base, cand benchFile, threshold, minBase float64) string {
	if !cand.Identical {
		*failed = true
		return fmt.Sprintf("FAIL  %-12s parallel table differs from serial table", name)
	}
	if base.SerialSeconds <= 0 {
		return fmt.Sprintf("SKIP  %-12s baseline has no serial timing", name)
	}
	ratio := cand.SerialSeconds / base.SerialSeconds
	detail := fmt.Sprintf("serial %.3fs vs baseline %.3fs (%+.1f%%)",
		cand.SerialSeconds, base.SerialSeconds, (ratio-1)*100)
	switch {
	case ratio > 1+threshold && base.SerialSeconds < minBase:
		return fmt.Sprintf("WARN  %-12s %s — below the %.0fms noise floor, not gated",
			name, detail, minBase*1000)
	case ratio > 1+threshold:
		*failed = true
		return fmt.Sprintf("FAIL  %-12s %s exceeds the %.0f%% gate", name, detail, threshold*100)
	case ratio > 1:
		return fmt.Sprintf("WARN  %-12s %s", name, detail)
	default:
		return fmt.Sprintf("OK    %-12s %s", name, detail)
	}
}

// loadDir reads every BENCH_*.json in dir keyed by experiment name.
func loadDir(dir string) (map[string]benchFile, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]benchFile, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var bf benchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		if bf.Experiment == "" {
			// Fall back to the file name so hand-trimmed fixtures work.
			bf.Experiment = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_"), ".json")
		}
		out[bf.Experiment] = bf
	}
	return out, nil
}
