package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench drops one BENCH_<name>.json fixture into dir.
func writeBench(t *testing.T, dir, name string, serial float64, identical bool) {
	t.Helper()
	data, err := json.Marshal(benchFile{
		Experiment:      name,
		SerialSeconds:   serial,
		ParallelSeconds: serial / 2,
		Speedup:         2,
		Identical:       identical,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// guard runs the CLI against the two fixture directories and returns
// exit code and stdout.
func guard(t *testing.T, base, cand string, extra ...string) (int, string) {
	t.Helper()
	var out, errOut strings.Builder
	args := append([]string{"-baseline", base, "-candidate", cand}, extra...)
	code := run(args, &out, &errOut)
	return code, out.String() + errOut.String()
}

func TestPassWithinThreshold(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeBench(t, base, "fig1", 1.00, true)
	writeBench(t, cand, "fig1", 0.80, true) // faster: OK
	writeBench(t, base, "fig5", 1.00, true)
	writeBench(t, cand, "fig5", 1.20, true) // 20% slower: warn, not fail
	code, out := guard(t, base, cand)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "OK    fig1") || !strings.Contains(out, "WARN  fig5") {
		t.Errorf("unexpected report:\n%s", out)
	}
}

func TestFailBeyondThreshold(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeBench(t, base, "fig1", 1.00, true)
	writeBench(t, cand, "fig1", 1.30, true) // 30% slower: fail at 25%
	code, out := guard(t, base, cand)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL  fig1") || !strings.Contains(out, "25% gate") {
		t.Errorf("unexpected report:\n%s", out)
	}
}

func TestThresholdFlagWidensGate(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeBench(t, base, "fig1", 1.00, true)
	writeBench(t, cand, "fig1", 1.30, true)
	code, out := guard(t, base, cand, "-threshold", "0.5")
	if code != 0 {
		t.Fatalf("exit %d, want 0 at 50%% threshold\n%s", code, out)
	}
	if !strings.Contains(out, "WARN  fig1") {
		t.Errorf("unexpected report:\n%s", out)
	}
}

func TestTinyBaselinesWarnInsteadOfFail(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeBench(t, base, "fig4a", 0.019, true)
	writeBench(t, cand, "fig4a", 0.030, true) // +58%, but 19ms is pure noise
	writeBench(t, base, "fig1", 1.00, true)
	writeBench(t, cand, "fig1", 1.30, true) // long experiments still gated
	code, out := guard(t, base, cand)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (fig1 must still fail)\n%s", code, out)
	}
	if !strings.Contains(out, "WARN  fig4a") || !strings.Contains(out, "noise floor") {
		t.Errorf("tiny experiment not downgraded to WARN:\n%s", out)
	}
	if !strings.Contains(out, "FAIL  fig1") {
		t.Errorf("long experiment escaped the gate:\n%s", out)
	}
}

func TestMinFlagLowersNoiseFloor(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeBench(t, base, "fig4a", 0.019, true)
	writeBench(t, cand, "fig4a", 0.030, true)
	code, out := guard(t, base, cand, "-min", "0.01")
	if code != 1 {
		t.Fatalf("exit %d, want 1 with floor lowered below baseline\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL  fig4a") {
		t.Errorf("unexpected report:\n%s", out)
	}
}

func TestNonIdenticalTablesAlwaysFail(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeBench(t, base, "fig1", 1.00, true)
	writeBench(t, cand, "fig1", 0.50, false) // fast but nondeterministic
	code, out := guard(t, base, cand)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "parallel table differs") {
		t.Errorf("unexpected report:\n%s", out)
	}
}

func TestMissingExperimentsAreSkippedNotFatal(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeBench(t, base, "fig1", 1.00, true)
	writeBench(t, base, "retired", 1.00, true)
	writeBench(t, cand, "fig1", 1.00, true)
	writeBench(t, cand, "brandnew", 1.00, true)
	code, out := guard(t, base, cand)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "SKIP  retired") || !strings.Contains(out, "SKIP  brandnew") {
		t.Errorf("unexpected report:\n%s", out)
	}
}

func TestTrendFileAccumulatesRuns(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeBench(t, base, "fig1", 1.00, true)
	writeBench(t, cand, "fig1", 0.90, true)
	trend := filepath.Join(t.TempDir(), "deep", "BENCH_TREND.jsonl")

	// First run passes; second run regresses but is still recorded.
	code, out := guard(t, base, cand, "-trend", trend)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "trend: appended 1 experiments") {
		t.Errorf("no trend confirmation:\n%s", out)
	}
	writeBench(t, cand, "fig1", 1.50, true)
	if code, out = guard(t, base, cand, "-trend", trend); code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}

	data, err := os.ReadFile(trend)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("trend has %d lines, want 2:\n%s", len(lines), data)
	}
	for i, want := range []struct {
		passed bool
		serial float64
	}{{true, 0.90}, {false, 1.50}} {
		var entry trendEntry
		if err := json.Unmarshal([]byte(lines[i]), &entry); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if entry.Passed != want.passed || entry.Time == "" {
			t.Errorf("line %d: passed %v time %q, want passed %v", i, entry.Passed, entry.Time, want.passed)
		}
		if got := entry.Experiments["fig1"].SerialSeconds; got != want.serial {
			t.Errorf("line %d: serial %v, want %v", i, got, want.serial)
		}
	}
}

func TestEmptyDirsAreUsageErrors(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	if code, _ := guard(t, base, cand); code != 2 {
		t.Fatalf("empty baseline: exit %d, want 2", code)
	}
	writeBench(t, base, "fig1", 1.00, true)
	if code, _ := guard(t, base, cand); code != 2 {
		t.Fatalf("empty candidate: exit %d, want 2", code)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", base}, &out, &errOut); code != 2 {
		t.Fatalf("missing -candidate: exit %d, want 2", code)
	}
}
