// Command coefficientd is the fault-tolerant simulation daemon: it
// serves scenario-simulation jobs over HTTP on the deterministic
// experiment runner, with admission control, per-job deadlines,
// deterministic retries, panic quarantine, and graceful drain on
// SIGTERM (see internal/serve and DESIGN.md §11).
//
// Usage:
//
//	coefficientd -addr :8077 -workers 4 -queue 32 -drain 30s -results results/served
//
// Submit a job and watch it:
//
//	curl -s -X POST localhost:8077/jobs -d '{"seed":1,"quick":true}'
//	curl -s localhost:8077/jobs/<id>
//	curl -s localhost:8077/healthz
//
// SIGTERM (or SIGINT) stops admission, finishes queued and in-flight
// jobs under the -drain deadline, flushes the result store, and exits 0
// on a clean drain, 1 on a forced one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/flexray-go/coefficient/internal/serve"
	"github.com/flexray-go/coefficient/internal/serve/journal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "coefficientd:", err)
		os.Exit(1)
	}
}

// run boots the daemon and blocks until ctx is cancelled (the signal
// path) and the drain completes.  onReady, when non-nil, receives the
// bound address once the listener is up — the test hook.
func run(ctx context.Context, args []string, logw io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("coefficientd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8077", "listen address")
		workers    = fs.Int("workers", 2, "data-plane worker count")
		queueCap   = fs.Int("queue", 16, "admission queue capacity")
		retries    = fs.Int("retries", 3, "max attempts per job (transient failures)")
		quarantine = fs.Int("quarantine-after", 3, "panics per scenario hash before quarantine")
		drain      = fs.Duration("drain", 30*time.Second, "graceful drain deadline on SIGTERM")
		resultDir  = fs.String("results", "", "flush the result store into this directory on drain")
		retryAfter = fs.Duration("retry-after", 2*time.Second, "Retry-After hint on 503 rejections")
		stateDir   = fs.String("state-dir", "", "durable state directory (write-ahead journal + persistent results); empty runs memory-only")
		fsyncFlag  = fs.String("fsync", "always", "journal fsync policy: always, batch or never")
		diskFlag   = fs.String("disk-policy", "degrade", "on durable-state I/O errors: degrade (drop to memory-only) or fail (refuse new work)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fsync, err := journal.ParseFsyncMode(*fsyncFlag)
	if err != nil {
		return err
	}
	policy, err := serve.ParseDiskPolicy(*diskFlag)
	if err != nil {
		return err
	}

	srv, err := serve.New(serve.Config{
		Workers:         *workers,
		QueueCapacity:   *queueCap,
		Retry:           serve.RetryPolicy{MaxAttempts: *retries},
		QuarantineAfter: *quarantine,
		RetryAfter:      *retryAfter,
		ResultDir:       *resultDir,
		StateDir:        *stateDir,
		Fsync:           fsync,
		DiskPolicy:      policy,
	})
	if err != nil {
		return err
	}
	if *stateDir != "" {
		st := srv.Stats()
		fmt.Fprintf(logw, "coefficientd: durable state in %s: %d results cached, %d jobs recovered, %d corrupt files quarantined (diskDegraded=%v)\n",
			*stateDir, st.StoreEntries, st.RecoveredJobs, st.CorruptFiles, st.DiskDegraded)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(logw, "coefficientd: listening on %s (%d workers, queue %d)\n",
		ln.Addr(), *workers, *queueCap)
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(logw, "coefficientd: draining (deadline %v)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := srv.Drain(drainCtx)

	// The API (incl. /healthz) stays up through the drain so probes can
	// watch it; shut it down only once the workers are done.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	if drainErr != nil {
		return fmt.Errorf("forced drain: %w", drainErr)
	}
	fmt.Fprintf(logw, "coefficientd: drained cleanly\n")
	return nil
}
