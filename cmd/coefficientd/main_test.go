package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// bootDaemon runs the daemon on an ephemeral port and returns its base
// URL, the cancel that triggers the drain path, and the channel carrying
// run's final error.
func bootDaemon(t *testing.T, extraArgs ...string) (string, context.CancelFunc, <-chan error, *strings.Builder) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	var log strings.Builder
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain", "30s"}, extraArgs...)
	go func() {
		errc <- run(ctx, args, &log, func(addr string) { ready <- addr })
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, errc, &log
	case err := <-errc:
		cancel()
		t.Fatalf("daemon failed to boot: %v", err)
		return "", nil, nil, nil
	}
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(data, into); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, data)
		}
	}
	return resp.StatusCode
}

// TestDaemonSmokeJobAndCleanDrain is the end-to-end lifecycle: boot,
// serve a quick job over HTTP, then cancel the run context (the SIGTERM
// path) and require a clean drain with the result flushed to disk.
func TestDaemonSmokeJobAndCleanDrain(t *testing.T) {
	resultDir := filepath.Join(t.TempDir(), "served")
	base, cancel, errc, log := bootDaemon(t, "-results", resultDir)
	defer cancel()

	if code := getJSON(t, base+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}

	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"seed": 11, "quick": true, "parallel": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var accepted struct{ ID, Hash string }
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	var st struct{ State string }
	for i := 0; i < 30000 && st.State != "done"; i++ {
		if code := getJSON(t, base+"/jobs/"+accepted.ID, &st); code != http.StatusOK {
			t.Fatalf("job status: %d", code)
		}
		if st.State != "done" {
			time.Sleep(time.Millisecond)
		}
	}
	if st.State != "done" {
		t.Fatalf("smoke job never completed; state %q", st.State)
	}
	var health struct {
		Done     int  `json:"done"`
		Draining bool `json:"draining"`
	}
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK ||
		health.Done != 1 || health.Draining {
		t.Fatalf("healthz: code %d doc %+v", code, health)
	}

	// The SIGTERM path: cancel the run context, expect a clean exit.
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exit: %v\nlog:\n%s", err, log.String())
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon did not drain within a minute")
	}
	if !strings.Contains(log.String(), "drained cleanly") {
		t.Errorf("log missing clean-drain line:\n%s", log.String())
	}
	if _, err := os.ReadFile(filepath.Join(resultDir, accepted.Hash+".json")); err != nil {
		t.Errorf("result not flushed on drain: %v", err)
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-no-such-flag"}, io.Discard, nil)
	if err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestDaemonListenErrorSurfaces(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.0.0.1:0"}, io.Discard, nil)
	if err == nil {
		t.Fatal("bad listen address accepted")
	}
}
