package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/flexray-go/coefficient/internal/experiment"
)

// The kill -9 recovery test needs a real process to murder: TestMain
// re-execs the test binary as the daemon when COEFFICIENTD_CHILD is set,
// so SIGKILL lands on an actual coefficientd run — no in-process
// simulation of a crash.
func TestMain(m *testing.M) {
	if os.Getenv("COEFFICIENTD_CHILD") == "1" {
		childMain()
		return
	}
	os.Exit(m.Run())
}

// childMain is the daemon half of the re-exec: parse the JSON-encoded
// args from the environment and run the real main loop, announcing the
// bound address on stdout for the parent to scrape.
func childMain() {
	var args []string
	if err := json.Unmarshal([]byte(os.Getenv("COEFFICIENTD_ARGS")), &args); err != nil {
		fmt.Fprintln(os.Stderr, "child: bad COEFFICIENTD_ARGS:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, args, os.Stderr, func(addr string) {
		fmt.Printf("ADDR %s\n", addr)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// daemonProc is one re-exec'd coefficientd under test.
type daemonProc struct {
	cmd  *exec.Cmd
	base string
}

// spawnDaemon re-execs the test binary as a daemon and waits for its
// listen address.
func spawnDaemon(t *testing.T, args ...string) *daemonProc {
	t.Helper()
	enc, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "COEFFICIENTD_CHILD=1", "COEFFICIENTD_ARGS="+string(enc))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				addrc <- rest
				break
			}
		}
		close(addrc)
	}()
	select {
	case addr, ok := <-addrc:
		if !ok {
			if kerr := cmd.Process.Kill(); kerr != nil {
				t.Log(kerr)
			}
			t.Fatal("daemon child exited before announcing its address")
		}
		return &daemonProc{cmd: cmd, base: "http://" + addr}
	case <-time.After(time.Minute):
		if kerr := cmd.Process.Kill(); kerr != nil {
			t.Log(kerr)
		}
		t.Fatal("daemon child never announced its address")
		return nil
	}
}

// kill9 SIGKILLs the daemon and reaps it.
func (d *daemonProc) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	// The only acceptable outcome is death by SIGKILL.
	if err := d.cmd.Wait(); err == nil || !strings.Contains(err.Error(), "killed") {
		t.Fatalf("child exit after SIGKILL: %v", err)
	}
}

// TestDaemonKill9RecoversJobsAndResults is the whole durability story in
// one process-level run: boot with -state-dir, load a mix of jobs,
// SIGKILL the daemon mid-flight, restart on the same state directory,
// and require that every job submitted before the kill is still known
// under its original ID, reaches done, and serves a table byte-identical
// to an in-process offline run — completed jobs from the persistent
// cache, interrupted ones by deterministic re-execution.
func TestDaemonKill9RecoversJobsAndResults(t *testing.T) {
	stateDir := filepath.Join(t.TempDir(), "state")
	args := []string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "16", "-state-dir", stateDir}
	d1 := spawnDaemon(t, args...)

	// One slow non-quick blocker pins the single worker (~10x a quick
	// job), guaranteeing the quick jobs behind it are still queued when
	// the SIGKILL lands.
	type submitted struct {
		id, hash string
		spec     experiment.DegradationOptions
	}
	bodies := []string{`{"seed": 2, "parallel": 1}`}
	specs := []experiment.DegradationOptions{{Seed: 2, Parallel: 1}}
	for seed := 700; seed < 705; seed++ {
		bodies = append(bodies, fmt.Sprintf(`{"seed": %d, "quick": true, "parallel": 1}`, seed))
		specs = append(specs, experiment.DegradationOptions{Seed: uint64(seed), Quick: true, Parallel: 1})
	}
	var jobs []submitted
	for i, body := range bodies {
		resp, err := http.Post(d1.base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, data)
		}
		var acc struct{ ID, Hash string }
		if err := json.Unmarshal(data, &acc); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, submitted{id: acc.ID, hash: acc.Hash, spec: specs[i]})
	}

	// Kill only once the daemon is visibly mid-flight: one job running,
	// at least two more waiting.
	midFlight := false
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		var h struct{ Running, Queued int }
		if code := getJSON(t, d1.base+"/healthz", &h); code != http.StatusOK {
			t.Fatalf("healthz: %d", code)
		}
		if h.Running >= 1 && h.Queued >= 2 {
			midFlight = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !midFlight {
		t.Fatal("daemon never reached the mid-flight state to kill")
	}
	d1.kill9(t)

	// Restart on the same state directory: the journal replays.
	d2 := spawnDaemon(t, args...)
	defer func() {
		if d2.cmd.Process != nil {
			if err := d2.cmd.Process.Kill(); err == nil {
				if werr := d2.cmd.Wait(); werr != nil &&
					!strings.Contains(werr.Error(), "killed") {
					t.Log(werr)
				}
			}
		}
	}()

	var h struct{ RecoveredJobs, Admitted int }
	if code := getJSON(t, d2.base+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz after restart: %d", code)
	}
	if h.RecoveredJobs < 1 {
		t.Errorf("recoveredJobs = %d after mid-flight kill, want >= 1", h.RecoveredJobs)
	}
	if h.Admitted != len(jobs) {
		t.Errorf("admitted = %d after restart, want all %d journaled jobs", h.Admitted, len(jobs))
	}

	// Every job must reach done under its original ID...
	for _, job := range jobs {
		var st struct{ Hash, State string }
		for i := 0; i < 60000 && st.State != "done"; i++ {
			if code := getJSON(t, d2.base+"/jobs/"+job.id, &st); code != http.StatusOK {
				t.Fatalf("job %s unknown after restart: %d", job.id, code)
			}
			if st.State != "done" {
				time.Sleep(time.Millisecond)
			}
		}
		if st.State != "done" {
			t.Fatalf("job %s never completed after restart; state %q", job.id, st.State)
		}
		if st.Hash != job.hash {
			t.Errorf("job %s hash changed across restart: %s vs %s", job.id, st.Hash, job.hash)
		}
	}

	// ...and serve exactly the bytes an uninterrupted offline run yields,
	// whether the result came from the persistent cache or a re-run.
	for _, job := range jobs {
		var res struct{ Table string }
		if code := getJSON(t, d2.base+"/results/"+job.hash, &res); code != http.StatusOK {
			t.Fatalf("result %s missing after recovery: %d", job.hash, code)
		}
		rows, err := experiment.Degradation(job.spec)
		if err != nil {
			t.Fatal(err)
		}
		if want := experiment.DegradationTable(rows).String(); res.Table != want {
			t.Errorf("job %s: recovered table differs from offline run:\n%s\nvs\n%s",
				job.id, res.Table, want)
		}
	}
}
