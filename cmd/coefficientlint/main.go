// Command coefficientlint runs the repository's custom static analyzers
// (internal/lint) over the requested packages and exits non-zero on any
// finding.  The suite enforces the determinism and error-handling
// contracts of DESIGN.md §8/§9: no order-dependent map iteration, no
// wall-clock or global-rand reads in simulation code, no dropped writer
// errors, no unjoinable goroutines.
//
// Usage:
//
//	coefficientlint [-only mapiter,errdrop] [-json] [-list] ./...
//
// Patterns follow the go tool's shape: a directory, or a directory with
// a trailing /... for the whole subtree.  -json prints one JSON object
// per diagnostic line ({"file","line","col","analyzer","message"}) for
// CI annotation tooling.  Exit status is 0 for a clean tree, 1 when
// diagnostics were reported, 2 on a load or internal error — identical
// in both output modes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/flexray-go/coefficient/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("coefficientlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		only   = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		list   = fs.Bool("list", false, "list the analyzers and exit")
		asJSON = fs.Bool("json", false, "emit one JSON object per diagnostic line")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Suite() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(errOut, "coefficientlint:", err)
		return 2
	}
	dirs, err := resolvePatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(errOut, "coefficientlint:", err)
		return 2
	}

	var onlyNames []string
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if lint.ByName(name) == nil {
				fmt.Fprintf(errOut, "coefficientlint: unknown analyzer %q\n", name)
				return 2
			}
			onlyNames = append(onlyNames, name)
		}
	}

	diags, err := lint.LintDirs(root, dirs, onlyNames)
	if err != nil {
		fmt.Fprintln(errOut, "coefficientlint:", err)
		return 2
	}
	enc := json.NewEncoder(out)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		if *asJSON {
			if err := enc.Encode(jsonDiagnostic{
				File:     filepath.ToSlash(pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(errOut, "coefficientlint:", err)
				return 2
			}
			continue
		}
		fmt.Fprintf(out, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "coefficientlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiagnostic is the -json line format: one object per finding, the
// file path slash-separated and module-root-relative so CI annotations
// resolve on any runner.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// resolvePatterns expands go-style package patterns into the sorted set
// of package directories they cover.
func resolvePatterns(root string, patterns []string) ([]string, error) {
	all, err := lint.ModuleDirs(root)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, pat := range patterns {
		base, subtree := strings.CutSuffix(pat, "/...")
		if base == "." || base == "" {
			base = root
		} else {
			if !filepath.IsAbs(base) {
				base = filepath.Join(root, base)
			}
			base = filepath.Clean(base)
		}
		matched := false
		for _, dir := range all {
			ok := dir == base || (subtree && strings.HasPrefix(dir, base+string(filepath.Separator)))
			if !ok {
				continue
			}
			matched = true
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return dirs, nil
}
