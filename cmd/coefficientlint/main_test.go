package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-file module and chdirs into
// it, so run's FindModuleRoot resolves the fixture instead of this
// repository.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmplint\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
	return dir
}

const cleanSrc = `package main

func main() {}
`

// badDirectiveSrc carries a malformed suppression (no reason), which is
// itself a diagnostic — a violation that needs no imports to trigger.
const badDirectiveSrc = `package main

//lint:allow mapiter
func main() {}
`

// TestExitCodes pins the 0/1/2 contract in both output modes.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		args []string
		want int
	}{
		{"clean", cleanSrc, []string{"./..."}, 0},
		{"clean-json", cleanSrc, []string{"-json", "./..."}, 0},
		{"findings", badDirectiveSrc, []string{"./..."}, 1},
		{"findings-json", badDirectiveSrc, []string{"-json", "./..."}, 1},
		{"bad-pattern", cleanSrc, []string{"./nosuchdir/..."}, 2},
		{"bad-flag", cleanSrc, []string{"-nosuchflag"}, 2},
		{"unknown-analyzer", cleanSrc, []string{"-only", "nosuch", "./..."}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			writeModule(t, c.src)
			var out, errOut bytes.Buffer
			if got := run(c.args, &out, &errOut); got != c.want {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, c.want, out.String(), errOut.String())
			}
		})
	}
}

// TestJSONOutput checks the -json line protocol: one JSON object per
// diagnostic with file, position, analyzer, and message; nothing else
// on stdout.
func TestJSONOutput(t *testing.T) {
	writeModule(t, badDirectiveSrc)
	var out, errOut bytes.Buffer
	if got := run([]string{"-json", "./..."}, &out, &errOut); got != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", got, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly one diagnostic line, got %d:\n%s", len(lines), out.String())
	}
	var d jsonDiagnostic
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, lines[0])
	}
	if d.File != "main.go" {
		t.Errorf("file = %q, want main.go (module-root-relative, slash-separated)", d.File)
	}
	if d.Line != 3 || d.Col == 0 {
		t.Errorf("position = %d:%d, want line 3 with a column", d.Line, d.Col)
	}
	if d.Analyzer != "lintdirective" {
		t.Errorf("analyzer = %q, want lintdirective", d.Analyzer)
	}
	if !strings.Contains(d.Message, "needs a reason") {
		t.Errorf("message = %q, want the missing-reason explanation", d.Message)
	}
}

// TestListIncludesInterprocedural keeps -list honest about the suite:
// the dataflow analyzers ship alongside the per-file ones.
func TestListIncludesInterprocedural(t *testing.T) {
	var out, errOut bytes.Buffer
	if got := run([]string{"-list"}, &out, &errOut); got != 0 {
		t.Fatalf("exit = %d, want 0", got)
	}
	for _, name := range []string{"seedtaint", "ctxflow", "detreach", "mapiter"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing %q:\n%s", name, out.String())
		}
	}
}
