// Cluster lifecycle: everything that has to happen before the paper's
// scheduling results apply — the coldstart protocol brings the cluster up
// from silence, distributed clock synchronization holds the nodes' views of
// the global macrotick together, and only then does CoEfficient schedule
// the BBW workload (here with one ECU suffering a permanent fault
// mid-run).
package main

import (
	"fmt"
	"log"
	"time"

	coefficient "github.com/flexray-go/coefficient"
)

func main() {
	// Phase 0: wakeup.  A wake-capable ECU puts the wakeup pattern on the
	// bus; transceivers leave sleep after their per-node delays.
	wnodes := make([]coefficient.WakeupNode, 10)
	for i := range wnodes {
		wnodes[i] = coefficient.WakeupNode{
			Name:      fmt.Sprintf("ecu-%02d", i),
			CanWake:   i < 3,
			WakeDelay: i % 4,
		}
	}
	wake, err := coefficient.SimulateWakeup(coefficient.WakeupConfig{Nodes: wnodes, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wakeup:     %s woke the bus; all transceivers up after %d cycles\n",
		wake.Initiator, wake.WakeupCycles)

	// Phase 1: coldstart.  Three coldstart-capable ECUs, seven others.
	nodes := make([]coefficient.StartupNode, 10)
	for i := range nodes {
		nodes[i] = coefficient.StartupNode{
			Name:      fmt.Sprintf("ecu-%02d", i),
			Coldstart: i < 3,
		}
	}
	boot, err := coefficient.SimulateStartup(coefficient.StartupConfig{Nodes: nodes, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("startup:    leader %s, cluster up after %d cycles (%d CAS collisions)\n",
		boot.Leader, boot.StartupCycles, boot.CASCollisions)

	// Phase 2: clock synchronization across the sync nodes.
	sync, err := coefficient.SimulateClockSync(coefficient.ClockSyncConfig{
		Cycles:           200,
		SyncNodes:        10,
		MaxInitialOffset: 400, // microticks
		MaxDrift:         3,
		MeasurementNoise: 2,
		Seed:             11,
	}, 40 /* precision bound: a fraction of gdStaticSlot */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clock sync: precision %d → %d microticks, converged=%t\n",
		sync.InitialPrecision, sync.FinalPrecision, sync.Converged)

	// Phase 3: schedule the BBW workload; ECU 4 fails permanently at 1s.
	sae, err := coefficient.SAEAperiodic(coefficient.SAEAperiodicOptions{FirstID: 31, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	set, err := coefficient.MergeWorkloads("lifecycle", coefficient.BBW(), sae)
	if err != nil {
		log.Fatal(err)
	}
	setup, err := coefficient.DeriveLatencySetup(set, 30, 50)
	if err != nil {
		log.Fatal(err)
	}
	injA, err := coefficient.NewBERInjector(1e-7, 11)
	if err != nil {
		log.Fatal(err)
	}
	res, err := coefficient.Simulate(coefficient.SimOptions{
		Config:    setup.Config,
		Workload:  set,
		BitRate:   setup.BitRate,
		InjectorA: injA,
		Seed:      11,
		Mode:      coefficient.Streaming,
		Duration:  2 * time.Second,
		NodeFailures: map[int]coefficient.Macrotick{
			4: 1_000_000, // ECU 4 dies at t = 1s
		},
	}, coefficient.NewCoEfficient(coefficient.SchedulerOptions{BER: 1e-7, Goal: 0.999}))
	if err != nil {
		log.Fatal(err)
	}
	r := res.Report
	fmt.Printf("scheduling: %d delivered, %d dropped (ECU-4 traffic after its failure)\n",
		r.Delivered[coefficient.StaticSegment]+r.Delivered[coefficient.DynamicSegment],
		r.Dropped[coefficient.StaticSegment]+r.Dropped[coefficient.DynamicSegment])
	fmt.Printf("            miss ratio %.4f, dynamic latency %v\n",
		r.OverallMissRatio(), r.MeanLatency[coefficient.DynamicSegment])

	// Phase 4: network management — once no ECU demands the bus awake,
	// the cluster may sleep.
	agg, err := coefficient.NewNMAggregator(2)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v, err := coefficient.NewNMVector(2)
		if err != nil {
			log.Fatal(err)
		}
		// Every ECU has released its wake request by now.
		if err := agg.Observe(v); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("shutdown:   NM vectors all clear, ready to sleep: %t\n", agg.ReadyToSleep())
}
