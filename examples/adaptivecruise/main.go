// Adaptive cruise controller: show CoEfficient's cooperative scheduling on
// the ACC workload (paper Table III) — event-triggered messages riding
// stolen static-segment slack instead of waiting for the dynamic segment —
// by sweeping the dynamic segment size and comparing dynamic latencies.
package main

import (
	"fmt"
	"log"
	"time"

	coefficient "github.com/flexray-go/coefficient"
)

const seed = 7

func main() {
	sae, err := coefficient.SAEAperiodic(coefficient.SAEAperiodicOptions{FirstID: 31, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	set, err := coefficient.MergeWorkloads("acc+sae", coefficient.ACC(), sae)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s  %-12s  %-14s  %-14s  %-14s\n",
		"minislots", "scheduler", "dyn mean", "dyn p99", "stolen slots")
	for _, minislots := range []int{25, 50, 100} {
		setup, err := coefficient.DeriveLatencySetup(set, 30, minislots)
		if err != nil {
			log.Fatal(err)
		}
		co := coefficient.NewCoEfficient(coefficient.SchedulerOptions{BER: 1e-7, Goal: 0.999})
		for _, sched := range []coefficient.Scheduler{
			co,
			coefficient.NewFSPEC(coefficient.FSPECOptions{}),
		} {
			res, err := coefficient.Simulate(coefficient.SimOptions{
				Config:   setup.Config,
				Workload: set,
				BitRate:  setup.BitRate,
				Seed:     seed,
				Mode:     coefficient.Streaming,
				Duration: time.Second,
			}, sched)
			if err != nil {
				log.Fatal(err)
			}
			stolen := "-"
			if sched == coefficient.Scheduler(co) {
				stolen = fmt.Sprintf("%d soft / %d retx",
					co.Stats().StolenSoft, co.Stats().StolenStatic)
			}
			fmt.Printf("%-10d  %-12s  %-14v  %-14v  %-14s\n",
				minislots, res.Scheduler,
				res.Report.MeanLatency[coefficient.DynamicSegment],
				res.Report.P99Latency[coefficient.DynamicSegment],
				stolen)
		}
	}
	fmt.Println("\nCoEfficient serves event-triggered frames in idle static slots;")
	fmt.Println("FSPEC must wait for the dynamic segment and its FTDMA slot counter.")
}
