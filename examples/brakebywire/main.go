// Brake-by-wire: compare CoEfficient against the FSPEC baseline on the
// paper's safety-critical BBW workload (Table II) under transient faults,
// reporting the metrics of the paper's evaluation — latency per segment,
// deadline misses and bandwidth.
package main

import (
	"fmt"
	"log"
	"time"

	coefficient "github.com/flexray-go/coefficient"
)

const (
	ber  = 1e-7
	goal = 0.999
	seed = 42
)

func main() {
	sae, err := coefficient.SAEAperiodic(coefficient.SAEAperiodicOptions{FirstID: 31, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	set, err := coefficient.MergeWorkloads("bbw+sae", coefficient.BBW(), sae)
	if err != nil {
		log.Fatal(err)
	}
	setup, err := coefficient.DeriveLatencySetup(set, 30, 50)
	if err != nil {
		log.Fatal(err)
	}

	schedulers := []coefficient.Scheduler{
		coefficient.NewCoEfficient(coefficient.SchedulerOptions{BER: ber, Goal: goal}),
		coefficient.NewFSPEC(coefficient.FSPECOptions{Copies: 2}),
	}

	fmt.Printf("%-12s  %-12s  %-12s  %-10s  %-10s  %-8s\n",
		"scheduler", "static lat", "dynamic lat", "misses", "useful bw", "faults")
	for _, sched := range schedulers {
		injA, err := coefficient.NewBERInjector(ber, coefficient.DeriveSeed(seed, 1))
		if err != nil {
			log.Fatal(err)
		}
		injB, err := coefficient.NewBERInjector(ber, coefficient.DeriveSeed(seed, 2))
		if err != nil {
			log.Fatal(err)
		}
		res, err := coefficient.Simulate(coefficient.SimOptions{
			Config:    setup.Config,
			Workload:  set,
			BitRate:   setup.BitRate,
			InjectorA: injA,
			InjectorB: injB,
			Seed:      seed,
			Mode:      coefficient.Streaming,
			Duration:  2 * time.Second,
		}, sched)
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		fmt.Printf("%-12s  %-12v  %-12v  %-10.4f  %-10.4f  %-8d\n",
			res.Scheduler,
			r.MeanLatency[coefficient.StaticSegment],
			r.MeanLatency[coefficient.DynamicSegment],
			r.OverallMissRatio(),
			r.BandwidthUtilization,
			r.Faults)
	}
}
