// Fault tolerance: explore the paper's differentiated retransmission
// analysis (Theorem 1) — how the retransmission plan k_z and its bandwidth
// cost grow with the reliability goal, and how the differentiated plan
// compares with the uniform one FSPEC-style schemes need.
package main

import (
	"fmt"
	"log"
	"time"

	coefficient "github.com/flexray-go/coefficient"
)

func main() {
	set := coefficient.BBW()
	msgs := make([]coefficient.ReliabilityMessage, len(set.Messages))
	for i, m := range set.Messages {
		msgs[i] = coefficient.ReliabilityMessage{
			Name:   m.Name,
			Bits:   m.Bits,
			Period: m.Period,
		}
	}
	const (
		ber  = 1e-7
		unit = time.Second
	)

	fmt.Println("goal sweep (BBW, BER 1e-7, unit 1s):")
	fmt.Printf("%-12s  %-14s  %-14s  %-16s\n",
		"goal", "diff. total k", "uniform total", "achieved P")
	for _, goal := range []float64{0.99, 0.999, 0.9999, 0.99999, 0.999999} {
		diff, err := coefficient.PlanDifferentiated(msgs, ber, unit, goal, 0)
		if err != nil {
			log.Fatal(err)
		}
		uni, err := coefficient.PlanUniform(msgs, ber, unit, goal, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12g  %-14d  %-14d  %.9f\n",
			goal, diff.Total(), uni.Total(), diff.Success)
	}

	fmt.Println("\nIEC 61508 levels over one hour:")
	for _, sil := range []coefficient.SIL{coefficient.SIL1, coefficient.SIL2, coefficient.SIL3, coefficient.SIL4} {
		fmt.Printf("  %v: tolerable failures/hour %g, goal over 1s = %.12f\n",
			sil, sil.MaxFailuresPerHour(), sil.Goal(unit))
	}

	fmt.Println("\nper-message failure probabilities (BER 1e-7):")
	for _, m := range msgs[:5] {
		p, err := coefficient.FrameFailureProb(ber, m.Bits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %5d bits -> p_z = %.3e\n", m.Name, m.Bits, p)
	}
}
