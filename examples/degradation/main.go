// Graceful degradation: script a time-varying fault scenario (an EMI
// episode stepping channel A's BER to 1e-4, then a channel-A blackout) and
// watch the adaptive reliability controller react — replanning the
// retransmission vector online, failing static traffic over to channel B,
// and shedding the least-critical dynamic messages when the goal no longer
// fits the retransmission cap.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	coefficient "github.com/flexray-go/coefficient"
)

func main() {
	const horizon = 2 * time.Second

	// The stock scenario; the same document could be loaded from a JSON
	// file with coefficient.LoadScenario.
	scn := coefficient.DefaultDegradationScenario(horizon)
	doc, err := json.MarshalIndent(scn, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fault scenario:")
	fmt.Println(string(doc))
	fmt.Println()

	// Round-trip through the parser, as a file-based workflow would.
	parsed, err := coefficient.ParseScenario(doc)
	if err != nil {
		log.Fatal(err)
	}

	rows, err := coefficient.DegradationExperiment(coefficient.DegradationOptions{
		Scenario: parsed,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(coefficient.DegradationTable(rows).String())

	fmt.Println()
	for _, r := range rows {
		if r.Adaptive.Replans == 0 && r.Adaptive.Failovers == 0 {
			continue
		}
		fmt.Printf("%s: %d replans, %d failovers, %d messages shed (%d restored), observed FER A=%.3g B=%.3g\n",
			r.Variant, r.Adaptive.Replans, r.Adaptive.Failovers,
			r.Adaptive.ShedMessages, r.Adaptive.RestoredMessages,
			r.Adaptive.ObservedFER["A"], r.Adaptive.ObservedFER["B"])
	}
}
