// Quickstart: run the Brake-By-Wire workload through the CoEfficient
// scheduler for one simulated second and print the delivery report.
package main

import (
	"fmt"
	"log"
	"time"

	coefficient "github.com/flexray-go/coefficient"
)

func main() {
	// The paper's Table II workload plus the SAE aperiodic set (frame IDs
	// just above the 30 static slots of the 1 ms cycle).
	sae, err := coefficient.SAEAperiodic(coefficient.SAEAperiodicOptions{FirstID: 31, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	set, err := coefficient.MergeWorkloads("quickstart", coefficient.BBW(), sae)
	if err != nil {
		log.Fatal(err)
	}

	// Derive a 1 ms cycle (0.75 ms static, 50 minislots) and the bus
	// speed needed to carry the workload.
	setup, err := coefficient.DeriveLatencySetup(set, 30, 50)
	if err != nil {
		log.Fatal(err)
	}

	// Transient faults at the paper's BER-7 rate on both channels.
	injA, err := coefficient.NewBERInjector(1e-7, 1)
	if err != nil {
		log.Fatal(err)
	}
	injB, err := coefficient.NewBERInjector(1e-7, 2)
	if err != nil {
		log.Fatal(err)
	}

	sched := coefficient.NewCoEfficient(coefficient.SchedulerOptions{
		BER:  1e-7,
		Goal: 0.999,
	})
	res, err := coefficient.Simulate(coefficient.SimOptions{
		Config:    setup.Config,
		Workload:  set,
		BitRate:   setup.BitRate,
		InjectorA: injA,
		InjectorB: injB,
		Seed:      1,
		Mode:      coefficient.Streaming,
		Duration:  time.Second,
	}, sched)
	if err != nil {
		log.Fatal(err)
	}

	r := res.Report
	fmt.Printf("scheduler:          %s\n", res.Scheduler)
	fmt.Printf("bus speed:          %d Mbit/s\n", setup.BitRate/1_000_000)
	fmt.Printf("delivered:          %d static, %d dynamic\n",
		r.Delivered[coefficient.StaticSegment], r.Delivered[coefficient.DynamicSegment])
	fmt.Printf("mean latency:       %v static, %v dynamic\n",
		r.MeanLatency[coefficient.StaticSegment], r.MeanLatency[coefficient.DynamicSegment])
	fmt.Printf("deadline misses:    %.4f%%\n", 100*r.OverallMissRatio())
	fmt.Printf("faults seen:        %d (retransmissions: %d)\n", r.Faults, r.Retransmissions)
	fmt.Printf("bandwidth utilized: %.2f%% useful, %.2f%% raw\n",
		100*r.BandwidthUtilization, 100*r.RawUtilization)
	fmt.Printf("planned retx (k_z): %d total across %d messages\n",
		sched.Stats().PlannedRetx, len(set.Messages))
}
