// Signal packing: the paper's introduction motivates FlexRay with luxury
// cars where "70 ECUs need to exchange around 2500 signals".  This example
// generates a signal-level workload at that scale, packs the signals into
// frames with the first-fit-decreasing packer, builds the static schedule
// table, and reports the bandwidth the packing saves.
package main

import (
	"fmt"
	"log"

	coefficient "github.com/flexray-go/coefficient"
	"github.com/flexray-go/coefficient/internal/workload"
)

func main() {
	const signals = 2500

	set, err := workload.SyntheticSignals(workload.SignalLevelOptions{
		Signals: signals,
		Nodes:   70,
		Seed:    2014,
	})
	if err != nil {
		log.Fatal(err)
	}

	rawBits := 0
	perFrameOverhead := 0
	for _, m := range set.Messages {
		for _, s := range m.Signals {
			rawBits += s.Bits
		}
		perFrameOverhead += 88 // header + trailer + encoding per frame
	}
	unpackedOverhead := signals * 88

	fmt.Printf("signals:            %d across 70 ECUs\n", signals)
	fmt.Printf("packed frames:      %d (%.1f signals/frame)\n",
		len(set.Messages), float64(signals)/float64(len(set.Messages)))
	fmt.Printf("payload bits:       %d\n", rawBits)
	fmt.Printf("frame overhead:     %d bits packed vs %d bits unpacked (%.1f%% saved)\n",
		perFrameOverhead, unpackedOverhead,
		100*(1-float64(perFrameOverhead)/float64(unpackedOverhead)))

	// The packed set needs one static slot per frame ID: use the paper's
	// 5 ms cycle, whose 3 ms static budget can be cut into enough slots.
	slots := len(set.Messages) + 1
	setup, err := coefficient.DeriveRunningTimeSetup(set, slots)
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := coefficient.BuildSchedule(set, setup.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule:           %d slots of %v at %d Mbit/s, table utilization %.3f, feasible=%t\n",
		setup.Config.StaticSlots,
		setup.Config.ToDuration(setup.Config.StaticSlotLen),
		setup.BitRate/1_000_000,
		tbl.Utilization(),
		tbl.Feasible())
}
