package coefficient_test

import (
	"fmt"
	"log"
	"time"

	coefficient "github.com/flexray-go/coefficient"
)

// ExampleSimulate runs one simulated second of the Brake-By-Wire workload
// through CoEfficient on a fault-free bus.
func ExampleSimulate() {
	set, err := coefficient.MergeWorkloads("demo", coefficient.BBW())
	if err != nil {
		log.Fatal(err)
	}
	setup, err := coefficient.DeriveLatencySetup(set, 30, 50)
	if err != nil {
		log.Fatal(err)
	}
	res, err := coefficient.Simulate(coefficient.SimOptions{
		Config:   setup.Config,
		Workload: set,
		BitRate:  setup.BitRate,
		Seed:     1,
		Mode:     coefficient.Streaming,
		Duration: time.Second,
	}, coefficient.NewCoEfficient(coefficient.SchedulerOptions{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scheduler:", res.Scheduler)
	fmt.Println("misses:", res.Report.OverallMissRatio())
	// Output:
	// scheduler: CoEfficient
	// misses: 0
}

// ExamplePlanDifferentiated computes the paper's differentiated
// retransmission plan for two messages.
func ExamplePlanDifferentiated() {
	msgs := []coefficient.ReliabilityMessage{
		{Name: "fragile", Bits: 2000, Period: time.Millisecond},
		{Name: "robust", Bits: 64, Period: 100 * time.Millisecond},
	}
	plan, err := coefficient.PlanDifferentiated(msgs, 1e-5, time.Second, 0.9999, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fragile k=%d, robust k=%d, goal met: %t\n",
		plan.Retransmissions[0], plan.Retransmissions[1], plan.Success >= 0.9999)
	// Output:
	// fragile k=4, robust k=1, goal met: true
}

// ExampleBuildSchedule derives the static schedule table of the ACC
// workload.
func ExampleBuildSchedule() {
	set := coefficient.ACC()
	setup, err := coefficient.DeriveLatencySetup(set, 30, 50)
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := coefficient.BuildSchedule(set, setup.Config)
	if err != nil {
		log.Fatal(err)
	}
	first := tbl.Entries[0]
	fmt.Printf("%d entries, feasible: %t\n", len(tbl.Entries), tbl.Feasible())
	fmt.Printf("slot %d: base cycle %d, repetition %d\n",
		first.FrameID, first.BaseCycle, first.Repetition)
	// Output:
	// 20 entries, feasible: true
	// slot 1: base cycle 1, repetition 16
}

// ExampleFrameFailureProb evaluates the paper's transient-fault model.
func ExampleFrameFailureProb() {
	p, err := coefficient.FrameFailureProb(1e-7, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p_z = %.4g\n", p)
	// Output:
	// p_z = 0.0002
}

// ExampleFTM shows the fault-tolerant midpoint discarding outliers.
func ExampleFTM() {
	mid, err := coefficient.FTM([]coefficient.Macrotick{-900, 2, 4, 10, 900})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mid)
	// Output:
	// 6
}
