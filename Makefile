GO ?= go

.PHONY: all vet build test race fuzz ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over the scenario-DSL parser and the wire-format
# decoder; FUZZTIME can be raised for deeper runs.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/scenario/
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/frame/

ci: vet build test race
