GO ?= go

.PHONY: all vet build test race fuzz bench lint ci

all: ci

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the repo's own analyzer suite
# (cmd/coefficientlint), which enforces the determinism and
# error-handling contracts from DESIGN.md §9.  staticcheck runs too when
# it is on PATH; STATICCHECK_VERSION pins the release CI should install.
STATICCHECK_VERSION ?= 2024.1.1
lint: vet
	$(GO) run ./cmd/coefficientlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (pin: $(STATICCHECK_VERSION))"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over the scenario-DSL parser and the wire-format
# decoder; FUZZTIME can be raised for deeper runs.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/scenario/
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/frame/

# Time every experiment serial vs parallel and write one
# BENCH_<experiment>.json per experiment into BENCHDIR.  The run aborts
# if any parallel table differs from its serial counterpart.  BENCHFLAGS
# defaults to a quick sweep; unset it for full-length horizons.
BENCHDIR ?= results
BENCHFLAGS ?= -quick
bench: build
	$(GO) run ./cmd/coefficientsim -experiment all $(BENCHFLAGS) -bench $(BENCHDIR)

ci: lint build test race
