GO ?= go

.PHONY: all vet build test race fuzz ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Short fuzz pass over the scenario-DSL parser (satellite of the fault
# scenario engine); FUZZTIME can be raised for deeper runs.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/scenario/

ci: vet build test race
