GO ?= go

.PHONY: all vet build test race fuzz bench benchcheck corpus corpus-update profile lint ci

all: ci

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the repo's own analyzer suite
# (cmd/coefficientlint), which enforces the determinism and
# error-handling contracts from DESIGN.md §9/§14.  staticcheck runs too
# when it is on PATH; STATICCHECK_VERSION pins the release CI should
# install.  The coefficientlint run is wall-clock budgeted: the
# interprocedural passes (call graph + taint fixpoint) must stay fast
# enough that the full suite never becomes the long pole of CI.
STATICCHECK_VERSION ?= 2024.1.1
LINT_BUDGET_SECONDS ?= 60
lint: vet
	@start=$$(date +%s); \
	$(GO) run ./cmd/coefficientlint ./... || exit $$?; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "coefficientlint: clean in $${elapsed}s (budget $(LINT_BUDGET_SECONDS)s)"; \
	if [ $$elapsed -gt $(LINT_BUDGET_SECONDS) ]; then \
		echo "coefficientlint exceeded the $(LINT_BUDGET_SECONDS)s wall-clock budget" >&2; \
		exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (pin: $(STATICCHECK_VERSION))"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomizes test execution order within each package, so
# accidental inter-test state dependence fails loudly instead of riding
# on declaration order.
race:
	$(GO) test -race -shuffle=on ./...

# Short fuzz passes over the scenario-DSL parser and the wire-format
# decoder; FUZZTIME can be raised for deeper runs.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/scenario/
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/frame/

# Time every experiment serial vs parallel and write one
# BENCH_<experiment>.json per experiment into BENCHDIR.  The run aborts
# if any parallel table differs from its serial counterpart.  BENCHFLAGS
# defaults to a quick sweep; unset it for full-length horizons.
BENCHDIR ?= results
BENCHFLAGS ?= -quick
bench: build
	$(GO) run ./cmd/coefficientsim -experiment all $(BENCHFLAGS) -bench $(BENCHDIR)

# Run a fresh quick sweep into CHECKDIR and gate it against the
# committed BENCHDIR baseline: cmd/benchguard fails on a >25% serial
# wall-clock regression (or any serial/parallel table divergence) and
# warns on smaller slowdowns.  Every checked sweep is also appended to
# the TRENDFILE history so throughput is tracked across PRs, not just
# thresholded against the last baseline.
CHECKDIR ?= bench-out
TRENDFILE ?= results/BENCH_TREND.jsonl
benchcheck: build
	$(GO) run ./cmd/coefficientsim -experiment all $(BENCHFLAGS) -bench $(CHECKDIR)
	$(GO) run ./cmd/benchguard -baseline $(BENCHDIR) -candidate $(CHECKDIR) -trend $(TRENDFILE)

# Quick-mode scenario corpus (DESIGN.md §13): generate CORPUSCOUNT
# scenarios from CORPUSSEED, run them differentially under CoEfficient,
# FSPEC and adaptive CoEfficient with the invariant catalog armed,
# verify outcomes are byte-identical at 1 and 8 workers, and diff the
# results against the committed golden store.  `make corpus-update`
# rewrites the store after an intended behavior change.
CORPUSSEED ?= 1
CORPUSCOUNT ?= 200
CORPUSGOLDEN ?= results/corpus/golden-quick.json
corpus: build
	$(GO) run ./cmd/coefficientcorpus run -seed $(CORPUSSEED) -count $(CORPUSCOUNT) -quick -verify-parallel 8
	$(GO) run ./cmd/coefficientcorpus diff -seed $(CORPUSSEED) -count $(CORPUSCOUNT) -quick -golden $(CORPUSGOLDEN)

corpus-update: build
	$(GO) run ./cmd/coefficientcorpus diff -seed $(CORPUSSEED) -count $(CORPUSCOUNT) -quick -golden $(CORPUSGOLDEN) -update

# Profile the hot path two ways into PROFDIR: CPU/alloc profiles of a
# full experiment sweep via cmd/coefficientsim, plus the engine
# micro-benchmarks with the go test profiler.  Inspect with
# `go tool pprof -top $(PROFDIR)/cpu.pprof`.
PROFDIR ?= prof
PROFEXP ?= fig1
profile: build
	mkdir -p $(PROFDIR)
	$(GO) run ./cmd/coefficientsim -experiment $(PROFEXP) -quick -parallel 1 \
		-cpuprofile $(PROFDIR)/cpu.pprof -memprofile $(PROFDIR)/mem.pprof >/dev/null
	$(GO) test -run=^$$ -bench 'BenchmarkFig1RunningTime|BenchmarkFig5DeadlineMissRatio|BenchmarkSimulateCycle' \
		-benchmem -benchtime 50x -count 1 \
		-cpuprofile $(PROFDIR)/bench_cpu.pprof -memprofile $(PROFDIR)/bench_mem.pprof -o $(PROFDIR)/bench.test .
	@echo "profiles written to $(PROFDIR)/ (inspect: go tool pprof -top $(PROFDIR)/cpu.pprof)"

ci: lint build test race
