module github.com/flexray-go/coefficient

go 1.22
