package coefficient_test

import (
	"testing"
	"time"

	coefficient "github.com/flexray-go/coefficient"
)

func bbwWithSAE(t *testing.T) coefficient.MessageSet {
	t.Helper()
	sae, err := coefficient.SAEAperiodic(coefficient.SAEAperiodicOptions{FirstID: 31, Seed: 1})
	if err != nil {
		t.Fatalf("SAEAperiodic: %v", err)
	}
	set, err := coefficient.MergeWorkloads("bbw+sae", coefficient.BBW(), sae)
	if err != nil {
		t.Fatalf("MergeWorkloads: %v", err)
	}
	return set
}

func TestPublicAPISimulation(t *testing.T) {
	set := bbwWithSAE(t)
	setup, err := coefficient.DeriveLatencySetup(set, 30, 50)
	if err != nil {
		t.Fatalf("DeriveLatencySetup: %v", err)
	}
	injA, err := coefficient.NewBERInjector(1e-7, 1)
	if err != nil {
		t.Fatalf("NewBERInjector: %v", err)
	}
	rec := coefficient.NewTraceRecorder()
	res, err := coefficient.Simulate(coefficient.SimOptions{
		Config:    setup.Config,
		Workload:  set,
		BitRate:   setup.BitRate,
		InjectorA: injA,
		Seed:      1,
		Mode:      coefficient.Streaming,
		Duration:  200 * time.Millisecond,
		Recorder:  rec,
	}, coefficient.NewCoEfficient(coefficient.SchedulerOptions{BER: 1e-7, Goal: 0.999}))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Scheduler != "CoEfficient" {
		t.Errorf("Scheduler = %q", res.Scheduler)
	}
	if res.Report.Delivered[coefficient.StaticSegment] == 0 {
		t.Error("no static deliveries through the public API")
	}
	if rec.Len() == 0 {
		t.Error("trace recorder captured nothing")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if got := len(coefficient.BBW().Messages); got != 20 {
		t.Errorf("BBW has %d messages", got)
	}
	if got := len(coefficient.ACC().Messages); got != 20 {
		t.Errorf("ACC has %d messages", got)
	}
	syn, err := coefficient.Synthetic(coefficient.SyntheticOptions{Messages: 10, Seed: 3})
	if err != nil || len(syn.Messages) != 10 {
		t.Errorf("Synthetic: %v, %d messages", err, len(syn.Messages))
	}
	cluster := coefficient.DualChannelBus(10)
	if err := cluster.Validate(); err != nil {
		t.Errorf("DualChannelBus: %v", err)
	}
}

func TestPublicAPIReliability(t *testing.T) {
	msgs := []coefficient.ReliabilityMessage{
		{Name: "a", Bits: 1000, Period: time.Millisecond},
		{Name: "b", Bits: 200, Period: 10 * time.Millisecond},
	}
	plan, err := coefficient.PlanDifferentiated(msgs, 1e-6, time.Second, 0.999, 0)
	if err != nil {
		t.Fatalf("PlanDifferentiated: %v", err)
	}
	if plan.Success < 0.999 {
		t.Errorf("plan success %g below goal", plan.Success)
	}
	p, err := coefficient.SuccessProbability(msgs, 1e-6, time.Second, plan.Retransmissions)
	if err != nil || p < 0.999 {
		t.Errorf("SuccessProbability = %g, %v", p, err)
	}
	fp, err := coefficient.FrameFailureProb(1e-6, 1000)
	if err != nil || fp <= 0 || fp >= 1 {
		t.Errorf("FrameFailureProb = %g, %v", fp, err)
	}
	if coefficient.SIL3.Goal(time.Second) <= coefficient.SIL2.Goal(time.Second) {
		t.Error("SIL3 goal not stricter than SIL2")
	}
}

func TestPublicAPIPacking(t *testing.T) {
	signals := []coefficient.Signal{
		{Name: "x", Node: 1, Kind: coefficient.PeriodicMessage,
			Period: 10 * time.Millisecond, Deadline: 10 * time.Millisecond, Bits: 100},
		{Name: "y", Node: 1, Kind: coefficient.PeriodicMessage,
			Period: 10 * time.Millisecond, Deadline: 10 * time.Millisecond, Bits: 200},
	}
	msgs, err := coefficient.PackSignals(signals, coefficient.PackOptions{})
	if err != nil {
		t.Fatalf("PackSignals: %v", err)
	}
	if len(msgs) != 1 || msgs[0].Bits != 300 {
		t.Errorf("PackSignals = %+v", msgs)
	}
}

func TestPublicAPIScenarios(t *testing.T) {
	s7, s9 := coefficient.ScenarioBER7(), coefficient.ScenarioBER9()
	if s7.Label != "BER-7" || s9.Label != "BER-9" {
		t.Errorf("labels: %q, %q", s7.Label, s9.Label)
	}
	if s9.Goal <= s7.Goal {
		t.Error("BER-9 goal not stricter than BER-7")
	}
}

func TestPublicAPIExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	rows, err := coefficient.MissRatioExperiment(coefficient.MissOptions{
		Seed: 1, Quick: true, Minislots: []int{50},
		Scenarios: []coefficient.ExperimentScenario{coefficient.ScenarioBER7()},
	})
	if err != nil {
		t.Fatalf("MissRatioExperiment: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestPublicAPISurface(t *testing.T) {
	// Exercise every façade function not covered elsewhere, so the public
	// surface cannot silently rot.
	set := bbwWithSAE(t)

	setup, err := coefficient.DeriveRunningTimeSetup(set30(t, set), 80)
	if err != nil {
		t.Fatalf("DeriveRunningTimeSetup: %v", err)
	}
	if setup.Config.StaticSlots != 80 {
		t.Errorf("StaticSlots = %d", setup.Config.StaticSlots)
	}

	lat, err := coefficient.DeriveLatencySetup(set, 30, 50)
	if err != nil {
		t.Fatalf("DeriveLatencySetup: %v", err)
	}
	results, err := coefficient.AnalyzeWCRT(set, lat.Config, lat.BitRate)
	if err != nil {
		t.Fatalf("AnalyzeWCRT: %v", err)
	}
	if len(results) != 50 {
		t.Errorf("AnalyzeWCRT results = %d", len(results))
	}
	tbl, err := coefficient.BuildSchedule(set, lat.Config)
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	if _, err := coefficient.StaticWCRT(tbl, 1); err != nil {
		t.Errorf("StaticWCRT: %v", err)
	}
	if _, err := coefficient.DynamicWCRT(set, lat.Config, lat.BitRate, 31); err != nil {
		t.Errorf("DynamicWCRT: %v", err)
	}

	boot, err := coefficient.SimulateStartup(coefficient.StartupConfig{
		Nodes: []coefficient.StartupNode{
			{Name: "a", Coldstart: true},
			{Name: "b", Coldstart: true},
			{Name: "c"},
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatalf("SimulateStartup: %v", err)
	}
	if len(boot.JoinCycle) != 3 {
		t.Errorf("JoinCycle = %v", boot.JoinCycle)
	}

	syncRep, err := coefficient.SimulateClockSync(coefficient.ClockSyncConfig{
		Cycles: 50, SyncNodes: 4, MaxInitialOffset: 100, MaxDrift: 2,
		MeasurementNoise: 1, Seed: 1,
	}, 50)
	if err != nil {
		t.Fatalf("SimulateClockSync: %v", err)
	}
	if !syncRep.Converged {
		t.Errorf("clock sync did not converge: %+v", syncRep)
	}

	if _, err := coefficient.NewGilbertElliott(coefficient.GilbertElliottConfig{
		BERGood: 1e-7, BERBad: 1e-3, PGoodToBad: 0.01, PBadToGood: 0.1,
	}, 1); err != nil {
		t.Errorf("NewGilbertElliott: %v", err)
	}
	if got := coefficient.NewFSPEC(coefficient.FSPECOptions{}).Name(); got != "FSPEC" {
		t.Errorf("NewFSPEC Name = %q", got)
	}

	sigSet, err := coefficient.SyntheticSignals(coefficient.SignalLevelOptions{Signals: 50, Seed: 1})
	if err != nil || len(sigSet.Messages) == 0 {
		t.Errorf("SyntheticSignals: %v, %d messages", err, len(sigSet.Messages))
	}

	msgs := []coefficient.ReliabilityMessage{{Name: "m", Bits: 500, Period: time.Millisecond}}
	if _, err := coefficient.PlanUniform(msgs, 1e-6, time.Second, 0.999, 0); err != nil {
		t.Errorf("PlanUniform: %v", err)
	}
}

// set30 trims a workload's dynamic frame IDs to fit an 80-slot cycle by
// rebuilding the SAE set above 80.
func set30(t *testing.T, set coefficient.MessageSet) coefficient.MessageSet {
	t.Helper()
	sae, err := coefficient.SAEAperiodic(coefficient.SAEAperiodicOptions{FirstID: 81, Seed: 1})
	if err != nil {
		t.Fatalf("SAEAperiodic: %v", err)
	}
	out, err := coefficient.MergeWorkloads("for-80-slots", coefficient.BBW(), sae)
	if err != nil {
		t.Fatalf("MergeWorkloads: %v", err)
	}
	_ = set
	return out
}

func TestPublicAPIExperimentFacades(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness")
	}
	if _, err := coefficient.RunningTimeExperiment(coefficient.RunningTimeOptions{
		Seed: 1, Quick: true, Slots: []int{80},
		MessageCounts: []int{5}, SyntheticCounts: []int{20},
	}); err != nil {
		t.Errorf("RunningTimeExperiment: %v", err)
	}
	if _, err := coefficient.UtilizationExperiment(coefficient.UtilizationOptions{
		Seed: 1, Quick: true, Minislots: []int{50},
	}); err != nil {
		t.Errorf("UtilizationExperiment: %v", err)
	}
	if _, err := coefficient.LatencyExperiment(coefficient.LatencyOptions{
		Seed: 1, Quick: true, Minislots: []int{50}, Workloads: []string{"BBW"},
		Scenarios: []coefficient.ExperimentScenario{coefficient.ScenarioBER7()},
	}); err != nil {
		t.Errorf("LatencyExperiment: %v", err)
	}
	if _, err := coefficient.FrameLatencyExperiment(coefficient.FrameLatencyOptions{
		Seed: 1, Quick: true, Messages: 20,
	}); err != nil {
		t.Errorf("FrameLatencyExperiment: %v", err)
	}
	if _, err := coefficient.AblationExperiment(coefficient.AblationOptions{
		Seed: 1, Quick: true,
	}); err != nil {
		t.Errorf("AblationExperiment: %v", err)
	}
}

func TestPublicAPIScheduleSynthesis(t *testing.T) {
	set := coefficient.BBW()
	setup, err := coefficient.DeriveLatencySetup(set, 30, 50)
	if err != nil {
		t.Fatalf("DeriveLatencySetup: %v", err)
	}
	syn, err := coefficient.SynthesizeSchedule(set, setup.Config)
	if err != nil {
		t.Fatalf("SynthesizeSchedule: %v", err)
	}
	bound, err := coefficient.MinScheduleSlots(set, setup.Config)
	if err != nil {
		t.Fatalf("MinScheduleSlots: %v", err)
	}
	if syn.SlotsUsed != bound {
		t.Errorf("SlotsUsed = %d, bound %d", syn.SlotsUsed, bound)
	}
	if syn.SlotsUsed >= len(set.Messages) {
		t.Errorf("synthesis saved nothing: %d slots for %d messages",
			syn.SlotsUsed, len(set.Messages))
	}
}

func TestPublicAPISynthesisExperiment(t *testing.T) {
	rows, err := coefficient.SynthesisExperiment(coefficient.SynthesisOptions{Seed: 1})
	if err != nil {
		t.Fatalf("SynthesisExperiment: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestPublicAPIWakeupAndNM(t *testing.T) {
	rep, err := coefficient.SimulateWakeup(coefficient.WakeupConfig{
		Nodes: []coefficient.WakeupNode{
			{Name: "w", CanWake: true},
			{Name: "n", WakeDelay: 2},
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatalf("SimulateWakeup: %v", err)
	}
	if rep.Initiator != "w" || len(rep.AwakeCycle) != 2 {
		t.Errorf("wakeup = %+v", rep)
	}

	agg, err := coefficient.NewNMAggregator(2)
	if err != nil {
		t.Fatalf("NewNMAggregator: %v", err)
	}
	v, err := coefficient.NewNMVector(2)
	if err != nil {
		t.Fatalf("NewNMVector: %v", err)
	}
	if err := v.SetBit(5); err != nil {
		t.Fatalf("SetBit: %v", err)
	}
	if err := agg.Observe(v); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if agg.ReadyToSleep() {
		t.Error("awake bit set but ReadyToSleep")
	}
}
